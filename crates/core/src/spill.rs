//! Spill-to-disk for the DFS engine's cold subtree arenas.
//!
//! When [`crate::mpp::MppConfig::max_arena_bytes`] is set, the hybrid
//! engine ([`crate::dfs`]) no longer has to abort the moment the live
//! arena gauge fills up: at the BFS→DFS handoff it can serialize the
//! not-yet-scheduled component arenas through a [`SpillIo`] backend,
//! free them from the gauge, and restore each one on the worker that
//! pops its subtree task. Only the *hot* working set — one restored
//! component plus its deepest descend chain — has to fit under the
//! ceiling; [`crate::MineError::MemoryCeiling`] is reserved for runs
//! where even that fails.
//!
//! ## On-disk record layout
//!
//! Spill records reuse the `perigap-store` PGST wire conventions
//! (little-endian integers, magic, version, one tag byte, trailing
//! unhashed FNV-1a checksum). The store crate depends on this one, so
//! the conventions are duplicated here rather than imported; the store
//! reserves the tag (`perigap_store::TAG_SPILL`) and its compat test
//! decodes a record written here with its own `wire::Reader`.
//!
//! ```text
//! magic "PGST" | u32 version | u8 tag=3 | u64 record id
//! | u32 level | u8 saturated | u32 pattern count
//! | per pattern: codes (level bytes) | u32 entry count | (u32, u64)…
//! | u64 FNV-1a checksum of every preceding byte
//! ```
//!
//! The record id is stored inside the record, so a backend that hands
//! back the wrong file — or a torn file whose tail belongs to another
//! record — fails the id check or the checksum instead of silently
//! mining the wrong subtree. Decoding re-validates every structural
//! invariant the arena relies on (strictly ascending pattern codes,
//! strictly ascending PIL offsets) so corruption surfaces as a typed
//! [`crate::MineError::SpillIo`], never as a wrong pattern set.

use crate::arena::PilSet;
use crate::error::MineError;
use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

const MAGIC: &[u8; 4] = b"PGST";
const VERSION: u32 = 1;
/// Section tag for spill records — mirrored as
/// `perigap_store::TAG_SPILL` (the store crate cannot be imported from
/// here without inverting the dependency).
const TAG_SPILL: u8 = 3;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a over `bytes` — the digest every PGST-framed record in this
/// crate trails with (spill records here, corpus checkpoint records and
/// manifests in [`crate::corpus`]).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut state = FNV_OFFSET;
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Storage backend for spill records.
///
/// The DFS engine writes each cold component as one record, reads it
/// back exactly once when its subtree is scheduled, and removes it
/// afterwards. [`FsSpillIo`] is the production backend; the trait is
/// public so tests (and the fault-injection suite) can substitute
/// in-memory or misbehaving implementations via
/// [`crate::mpp::MppConfig::spill_io`].
///
/// Implementations must be safe to call from multiple worker threads
/// at once, but the engine never reads a record it has not finished
/// writing and never reads the same record twice.
pub trait SpillIo: Send + Sync + std::fmt::Debug {
    /// Persist the encoded bytes of one record.
    fn write(&self, record: u64, bytes: &[u8]) -> io::Result<()>;
    /// Read a record's bytes back, exactly as written.
    fn read(&self, record: u64) -> io::Result<Vec<u8>>;
    /// Remove a record that is no longer needed. A failure costs disk,
    /// not correctness — the engine surfaces it as a `spill-cleanup`
    /// warning trace event and counts it in
    /// [`crate::MineStats::spill_cleanup_failures`] rather than
    /// aborting the mine. Removing a record that no longer exists is
    /// not an error.
    fn remove(&self, record: u64) -> io::Result<()>;
}

/// The production [`SpillIo`]: one file per record under a spill
/// directory, named `spill-<record>.pgsp`.
#[derive(Debug)]
pub struct FsSpillIo {
    dir: PathBuf,
}

impl FsSpillIo {
    /// A backend writing into `dir` (created on first write).
    pub fn new(dir: impl Into<PathBuf>) -> FsSpillIo {
        FsSpillIo { dir: dir.into() }
    }

    fn path(&self, record: u64) -> PathBuf {
        self.dir.join(format!("spill-{record:08}.pgsp"))
    }
}

impl SpillIo for FsSpillIo {
    fn write(&self, record: u64, bytes: &[u8]) -> io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        std::fs::write(self.path(record), bytes)
    }

    fn read(&self, record: u64) -> io::Result<Vec<u8>> {
        std::fs::read(self.path(record))
    }

    fn remove(&self, record: u64) -> io::Result<()> {
        match std::fs::remove_file(self.path(record)) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }
}

/// An in-memory [`SpillIo`] for tests and benchmarks: behaves exactly
/// like a well-behaved disk without touching the filesystem.
#[derive(Debug, Default)]
pub struct MemSpillIo {
    records: Mutex<HashMap<u64, Vec<u8>>>,
}

impl SpillIo for MemSpillIo {
    fn write(&self, record: u64, bytes: &[u8]) -> io::Result<()> {
        self.records
            .lock()
            .expect("spill map lock")
            .insert(record, bytes.to_vec());
        Ok(())
    }

    fn read(&self, record: u64) -> io::Result<Vec<u8>> {
        self.records
            .lock()
            .expect("spill map lock")
            .get(&record)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("record {record}")))
    }

    fn remove(&self, record: u64) -> io::Result<()> {
        self.records.lock().expect("spill map lock").remove(&record);
        Ok(())
    }
}

/// Shared restore bookkeeping for one pool run: the backend plus a
/// taken-flag per record guaranteeing no two workers restore the same
/// record (a second taker is a scheduling bug and surfaces as a typed
/// error rather than double-charging the gauge).
#[derive(Debug)]
pub(crate) struct SpillState {
    pub(crate) io: Arc<dyn SpillIo>,
    taken: Vec<AtomicBool>,
}

impl SpillState {
    pub(crate) fn new(io: Arc<dyn SpillIo>, records: usize) -> SpillState {
        SpillState {
            io,
            taken: (0..records).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Claim `record` for restore. Errors if another worker already
    /// holds it.
    pub(crate) fn claim(&self, record: u64) -> Result<(), MineError> {
        let slot = self
            .taken
            .get(record as usize)
            .ok_or_else(|| spill_err(record, "unknown record id".into()))?;
        if slot.swap(true, Ordering::AcqRel) {
            return Err(spill_err(record, "restored twice".into()));
        }
        Ok(())
    }
}

pub(crate) fn spill_err(record: u64, message: String) -> MineError {
    MineError::SpillIo { record, message }
}

/// Serialize the `members` of `set` (ascending indices) as one spill
/// record. The members form a standalone generation: decoding yields a
/// compact [`PilSet`] holding exactly those patterns in order.
pub(crate) fn encode_record(record: u64, set: &PilSet, members: &[usize]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.push(TAG_SPILL);
    buf.extend_from_slice(&record.to_le_bytes());
    buf.extend_from_slice(&(set.level() as u32).to_le_bytes());
    buf.push(set.saturated() as u8);
    buf.extend_from_slice(&(members.len() as u32).to_le_bytes());
    for &i in members {
        buf.extend_from_slice(set.pattern_codes(i));
        let entries = set.entries(i);
        buf.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for &(offset, count) in entries {
            buf.extend_from_slice(&offset.to_le_bytes());
            buf.extend_from_slice(&count.to_le_bytes());
        }
    }
    let digest = fnv1a(&buf);
    buf.extend_from_slice(&digest.to_le_bytes());
    buf
}

/// A cursor over record bytes that turns every overrun into a typed
/// truncation error. The error constructor is injected so spill
/// records report [`MineError::SpillIo`] while corpus checkpoint
/// records (see [`crate::corpus`]) report their own variant from the
/// same cursor.
pub(crate) struct Take<'a> {
    bytes: &'a [u8],
    record: u64,
    err: fn(u64, String) -> MineError,
}

impl<'a> Take<'a> {
    pub(crate) fn new(bytes: &'a [u8], record: u64, err: fn(u64, String) -> MineError) -> Take<'a> {
        Take { bytes, record, err }
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8], MineError> {
        if self.bytes.len() < n {
            return Err((self.err)(
                self.record,
                format!(
                    "truncated record: needed {n} more bytes, {} left",
                    self.bytes.len()
                ),
            ));
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, MineError> {
        Ok(self.bytes(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, MineError> {
        Ok(u32::from_le_bytes(
            self.bytes(4)?.try_into().expect("exact length"),
        ))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, MineError> {
        Ok(u64::from_le_bytes(
            self.bytes(8)?.try_into().expect("exact length"),
        ))
    }

    pub(crate) fn u128(&mut self) -> Result<u128, MineError> {
        Ok(u128::from_le_bytes(
            self.bytes(16)?.try_into().expect("exact length"),
        ))
    }

    /// Bytes not yet consumed.
    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len()
    }
}

/// Decode and fully validate a spill record written by
/// [`encode_record`]. Every failure mode — truncation, bit flips, the
/// wrong record handed back, structural nonsense — is a typed
/// [`MineError::SpillIo`]; a successfully decoded set upholds all
/// arena invariants.
pub(crate) fn decode_record(record: u64, bytes: &[u8]) -> Result<PilSet, MineError> {
    const TRAILER: usize = 8;
    if bytes.len() < TRAILER {
        return Err(spill_err(
            record,
            format!(
                "record of {} bytes is shorter than its checksum",
                bytes.len()
            ),
        ));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - TRAILER);
    let stored = u64::from_le_bytes(trailer.try_into().expect("exact length"));
    let computed = fnv1a(body);
    if stored != computed {
        return Err(spill_err(
            record,
            format!(
                "checksum mismatch: record says {stored:#018x}, contents hash to {computed:#018x}"
            ),
        ));
    }
    let mut r = Take::new(body, record, spill_err);
    if r.bytes(4)? != MAGIC {
        return Err(spill_err(record, "bad magic".into()));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(spill_err(record, format!("unknown version {version}")));
    }
    let tag = r.u8()?;
    if tag != TAG_SPILL {
        return Err(spill_err(record, format!("unexpected section tag {tag}")));
    }
    let stored_id = r.u64()?;
    if stored_id != record {
        return Err(spill_err(
            record,
            format!("record claims to be id {stored_id}"),
        ));
    }
    let level = r.u32()? as usize;
    if level == 0 {
        return Err(spill_err(record, "level 0 pattern set".into()));
    }
    let saturated = match r.u8()? {
        0 => false,
        1 => true,
        other => {
            return Err(spill_err(
                record,
                format!("saturation flag {other} is neither 0 nor 1"),
            ))
        }
    };
    let count = r.u32()? as usize;
    let mut set = PilSet::new(level);
    let mut entries: Vec<(u32, u64)> = Vec::new();
    let mut prev_codes: Option<&[u8]> = None;
    for _ in 0..count {
        let codes = r.bytes(level)?;
        if let Some(prev) = prev_codes {
            if prev >= codes {
                return Err(spill_err(
                    record,
                    "pattern codes are not strictly ascending".into(),
                ));
            }
        }
        prev_codes = Some(codes);
        let n_entries = r.u32()? as usize;
        entries.clear();
        entries.reserve(n_entries);
        let mut prev_offset: Option<u32> = None;
        for _ in 0..n_entries {
            let offset = r.u32()?;
            let count = r.u64()?;
            if prev_offset.is_some_and(|p| p >= offset) {
                return Err(spill_err(
                    record,
                    "PIL offsets are not strictly ascending".into(),
                ));
            }
            prev_offset = Some(offset);
            entries.push((offset, count));
        }
        set.push_pattern(codes, &entries);
    }
    if !r.bytes.is_empty() {
        return Err(spill_err(
            record,
            format!("{} trailing bytes after the last pattern", r.bytes.len()),
        ));
    }
    set.set_saturated(saturated);
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::build_seed;
    use crate::gap::GapRequirement;
    use perigap_seq::Sequence;

    fn sample_set(saturated: bool) -> PilSet {
        let seq = Sequence::dna("ACGTTGCAACGTTACG").unwrap();
        let mut set = build_seed(
            &seq,
            GapRequirement::new(1, 3).unwrap(),
            3,
            crate::kernel::ResolvedKernel::Scalar,
        );
        set.set_saturated(saturated);
        set
    }

    #[test]
    fn round_trip_is_identical() {
        for saturated in [false, true] {
            let set = sample_set(saturated);
            let members: Vec<usize> = (0..set.len()).collect();
            let bytes = encode_record(7, &set, &members);
            let back = decode_record(7, &bytes).unwrap();
            assert_eq!(back, set);
            assert_eq!(back.saturated(), saturated);
        }
    }

    #[test]
    fn member_subset_round_trips_compactly() {
        let set = sample_set(false);
        assert!(set.len() >= 4, "sample needs a few patterns");
        let members: Vec<usize> = (0..set.len()).step_by(2).collect();
        let bytes = encode_record(0, &set, &members);
        let back = decode_record(0, &bytes).unwrap();
        assert_eq!(back.len(), members.len());
        for (compact, &orig) in members.iter().enumerate() {
            assert_eq!(back.pattern_codes(compact), set.pattern_codes(orig));
            assert_eq!(back.entries(compact), set.entries(orig));
        }
    }

    #[test]
    fn every_bit_flip_is_rejected() {
        let set = sample_set(false);
        let members: Vec<usize> = (0..set.len()).collect();
        let bytes = encode_record(3, &set, &members);
        // Flip one bit at a spread of positions, including the trailer.
        for pos in (0..bytes.len()).step_by(7).chain([bytes.len() - 1]) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x20;
            let err = decode_record(3, &corrupt)
                .expect_err(&format!("flip at byte {pos} must not decode"));
            assert!(matches!(err, MineError::SpillIo { record: 3, .. }));
        }
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let set = sample_set(false);
        let members: Vec<usize> = (0..set.len()).collect();
        let bytes = encode_record(1, &set, &members);
        for len in 0..bytes.len() {
            let err = decode_record(1, &bytes[..len])
                .expect_err(&format!("prefix of {len} bytes must not decode"));
            assert!(matches!(err, MineError::SpillIo { record: 1, .. }));
        }
    }

    #[test]
    fn wrong_record_id_is_rejected() {
        let set = sample_set(false);
        let members: Vec<usize> = (0..set.len()).collect();
        let bytes = encode_record(5, &set, &members);
        let err = decode_record(6, &bytes).unwrap_err();
        assert!(
            err.to_string().contains("id 5"),
            "the error names the imposter: {err}"
        );
    }

    #[test]
    fn structural_nonsense_is_rejected_even_with_valid_checksum() {
        // Non-ascending pattern codes with a correct trailer: the
        // decoder must catch what the checksum cannot.
        let mut set = PilSet::new(2);
        set.push_pattern(&[1, 0], &[(1, 1)]);
        let one = encode_record(0, &set, &[0]);
        // Two copies of the same pattern => equal codes, not ascending.
        let mut body = one[..one.len() - 8].to_vec();
        let pattern_bytes = &one[26..one.len() - 8]; // codes + entry block
        body.extend_from_slice(pattern_bytes);
        body[22..26].copy_from_slice(&2u32.to_le_bytes()); // pattern count
        let digest = fnv1a(&body);
        body.extend_from_slice(&digest.to_le_bytes());
        let err = decode_record(0, &body).unwrap_err();
        assert!(
            err.to_string().contains("ascending"),
            "expected an ordering error, got: {err}"
        );
    }

    #[test]
    fn fs_backend_round_trips_and_removes() {
        let dir = std::env::temp_dir().join(format!("perigap-spill-test-{}", std::process::id()));
        let io = FsSpillIo::new(&dir);
        io.write(2, b"payload").unwrap();
        assert_eq!(io.read(2).unwrap(), b"payload");
        io.remove(2).unwrap();
        assert!(io.read(2).is_err());
        // Removing an already-gone record is not an error...
        io.remove(2).unwrap();
        // ...but a record trapped in an unreadable location is.
        let nested = FsSpillIo::new(dir.join("not-a-dir"));
        std::fs::write(dir.join("not-a-dir"), b"file, not dir").unwrap();
        assert!(nested.remove(0).is_err(), "ENOTDIR must surface");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_backend_round_trips_and_removes() {
        let io = MemSpillIo::default();
        io.write(9, b"abc").unwrap();
        assert_eq!(io.read(9).unwrap(), b"abc");
        io.remove(9).unwrap();
        assert!(io.read(9).is_err());
    }

    #[test]
    fn claim_admits_each_record_once() {
        let state = SpillState::new(Arc::new(MemSpillIo::default()), 2);
        state.claim(1).unwrap();
        assert!(state.claim(1).is_err(), "second claim must fail");
        state.claim(0).unwrap();
        assert!(state.claim(7).is_err(), "out-of-range id must fail");
    }
}
