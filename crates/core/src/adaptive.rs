//! The adaptive-n strategy sketched at the end of Section 6.
//!
//! "If a user has no idea of a good n value, we could run MPP using a
//! small n … note the longest pattern discovered, use its length to
//! refine n and re-execute MPP. This process could continue until we
//! cannot refine n further." Each round with a small `n` is cheap, so a
//! few rounds still beat one worst-case run.
//!
//! Correctness note: a fixed point of this iteration is *heuristic* —
//! MPP with input `n` only guarantees completeness for lengths ≤ `n`,
//! so a frequent pattern longer than the fixed point could in principle
//! be missed if none of its length-`n` fragments surfaced. The paper
//! proposes the scheme on exactly those terms ("we do not explore this
//! approach further"); MPPm remains the sound way to choose `n`.
//!
//! This module is also home to the engines' other adaptive choice: the
//! per-list PIL *representation* policy ([`PilRepr`], [`ReprPolicy`],
//! [`ReprCache`]) that decides, from occupancy, whether a suffix's
//! occurrence list is joined through the sparse sliding-window merge or
//! the dense prefix-sum probe of [`crate::pil::DensePil`].

use crate::error::MineError;
use crate::gap::GapRequirement;
use crate::kernel::ResolvedKernel;
use crate::mpp::{mpp, MppConfig};
use crate::pil::DensePil;
use crate::result::MineOutcome;
use perigap_seq::Sequence;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Outcome of an adaptive run, with the refinement trajectory.
#[derive(Clone, Debug)]
pub struct AdaptiveOutcome {
    /// The final mining outcome.
    pub outcome: MineOutcome,
    /// The `n` used at each round (first entry is `initial_n`).
    pub n_trajectory: Vec<usize>,
    /// Total wall-clock across rounds.
    pub total_elapsed: std::time::Duration,
}

/// Run MPP repeatedly, growing `n` to the longest pattern found, until
/// the estimate stops changing (or reaches `l1`).
///
/// `initial_n` is the first guess; the paper suggests 10.
pub fn adaptive_mpp(
    seq: &Sequence,
    gap: GapRequirement,
    rho: f64,
    initial_n: usize,
    config: MppConfig,
) -> Result<AdaptiveOutcome, MineError> {
    let started = Instant::now();
    let l1 = gap.l1(seq.len());
    let mut n = initial_n
        .max(config.start_level)
        .min(l1.max(config.start_level));
    let mut trajectory = vec![n];
    let mut outcome = mpp(seq, gap, rho, n, config.clone())?;
    loop {
        let longest = outcome.longest_len().max(config.start_level);
        // Refine: the next n must cover everything seen so far.
        let next_n = longest.min(l1.max(config.start_level));
        if next_n <= n {
            break;
        }
        n = next_n;
        trajectory.push(n);
        outcome = mpp(seq, gap, rho, n, config.clone())?;
    }
    Ok(AdaptiveOutcome {
        outcome,
        n_trajectory: trajectory,
        total_elapsed: started.elapsed(),
    })
}

// ---------------------------------------------------------------------
// Adaptive PIL representation (sparse merge vs dense prefix-sum probe).
// ---------------------------------------------------------------------

/// Which physical PIL layout the join kernels use — see the two-layout
/// notes in [`crate::pil`]. Parsed from `--pil-repr` on the CLI.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PilRepr {
    /// Pick per suffix list from occupancy (the default).
    #[default]
    Auto,
    /// Always the sorted sparse `(offset, count)` merge.
    Sparse,
    /// Dense prefix-sum probes wherever a dense array is feasible.
    Dense,
}

impl std::str::FromStr for PilRepr {
    type Err = String;
    fn from_str(s: &str) -> Result<PilRepr, String> {
        match s {
            "auto" => Ok(PilRepr::Auto),
            "sparse" => Ok(PilRepr::Sparse),
            "dense" => Ok(PilRepr::Dense),
            other => Err(format!(
                "unknown PIL representation {other:?} (auto|sparse|dense)"
            )),
        }
    }
}

impl std::fmt::Display for PilRepr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PilRepr::Auto => "auto",
            PilRepr::Sparse => "sparse",
            PilRepr::Dense => "dense",
        })
    }
}

/// `Auto` crossover: densify a list when at least this fraction of its
/// occupied offset span holds an entry. Below it, the prefix-sum array
/// spends more memory traffic on empty slots than the O(1) probe saves
/// over the sliding-window merge.
pub const DEFAULT_CROSSOVER: f64 = 0.25;

/// Ceiling on span / entries honored even under forced `Dense`: beyond
/// it the prefix-sum array would allocate more than this many words per
/// sparse entry, so the decision falls back to sparse.
pub const DEFAULT_MAX_BLOWUP: usize = 64;

/// `Auto` never densifies lists shorter than this — the `O(span)` build
/// cannot amortize over a handful of probes.
const MIN_DENSE_LEN: usize = 8;

/// The per-list representation decision: a mode plus the tunable
/// occupancy crossover. Plain data (`Copy`), carried by
/// [`crate::mpp::MppConfig`] into every engine.
///
/// Representation choice is a pure performance knob: whichever side is
/// picked, mined patterns, supports, and `MineStats` are bit-identical
/// (see [`DensePil::build`] for why the saturation corner is covered).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReprPolicy {
    /// Forced mode, or `Auto` for the occupancy heuristic.
    pub mode: PilRepr,
    /// Minimum occupancy (entries / span) at which `Auto` goes dense.
    pub crossover: f64,
    /// Maximum span-per-entry blow-up tolerated even under `Dense`.
    pub max_blowup: usize,
}

impl Default for ReprPolicy {
    fn default() -> ReprPolicy {
        ReprPolicy::of(PilRepr::Auto)
    }
}

impl ReprPolicy {
    /// The default crossover under the given mode.
    pub fn of(mode: PilRepr) -> ReprPolicy {
        ReprPolicy {
            mode,
            crossover: DEFAULT_CROSSOVER,
            max_blowup: DEFAULT_MAX_BLOWUP,
        }
    }

    /// Would this policy densify a list with these entries? (Feasibility
    /// — the `u64` total-count check — still happens in
    /// [`DensePil::build`]; see [`ReprCache::decide`].)
    pub fn wants_dense(&self, entries: &[(u32, u64)]) -> bool {
        let len = entries.len() as u64;
        if len == 0 {
            return false;
        }
        let span = entries[entries.len() - 1].0 as u64 - entries[0].0 as u64 + 1;
        match self.mode {
            PilRepr::Sparse => false,
            PilRepr::Dense => span <= len.saturating_mul(self.max_blowup as u64),
            PilRepr::Auto => {
                entries.len() >= MIN_DENSE_LEN && len as f64 >= self.crossover * span as f64
            }
        }
    }
}

const TAG_UNDECIDED: u8 = 0;
const TAG_SPARSE: u8 = 1;
const TAG_DENSE: u8 = 2;

/// Per-generation cache of representation decisions and dense builds,
/// keyed by pattern index into the generation's pattern set.
///
/// Candidate generation joins every left parent of a run against the
/// same suffix lists, so one [`DensePil::build`] per suffix is reused
/// across the whole fan-out — the amortization that pays for the
/// `O(span)` build. The cache must be [`ReprCache::begin`]-reset
/// whenever the indices start referring to a different generation.
pub struct ReprCache {
    policy: ReprPolicy,
    /// The resolved join kernel: under [`ResolvedKernel::Simd`] dense
    /// builds also materialize the windowed-sum array for `gap` so the
    /// vector probe has its gather target.
    kern: ResolvedKernel,
    /// The gap the windowed sums are precomputed for (SIMD only).
    gap: Option<GapRequirement>,
    /// Decision per pattern index; `TAG_UNDECIDED` until first use.
    tags: Vec<u8>,
    /// Built prefix-sum arrays for the dense-tagged indices.
    dense: HashMap<usize, DensePil>,
}

impl ReprCache {
    /// An empty cache carrying `policy`, building plain (scalar-probe)
    /// dense arrays.
    pub fn new(policy: ReprPolicy) -> ReprCache {
        ReprCache::with_kernel(policy, ResolvedKernel::Scalar, None)
    }

    /// An empty cache whose dense builds match `kern`: the SIMD kernel
    /// gets windowed-sum arrays for `gap`. The dense/sparse *decisions*
    /// are identical across kernels — [`DensePil::build_windowed`]
    /// succeeds exactly when [`DensePil::build`] does — so
    /// representation choice stays kernel-invariant.
    pub fn with_kernel(
        policy: ReprPolicy,
        kern: ResolvedKernel,
        gap: Option<GapRequirement>,
    ) -> ReprCache {
        ReprCache {
            policy,
            kern,
            gap,
            tags: Vec::new(),
            dense: HashMap::new(),
        }
    }

    /// The policy this cache decides with.
    pub fn policy(&self) -> ReprPolicy {
        self.policy
    }

    /// Forget every decision and size for a generation of `patterns`
    /// lists. Keeps the tag allocation.
    pub fn begin(&mut self, patterns: usize) {
        self.tags.clear();
        self.tags.resize(patterns, TAG_UNDECIDED);
        self.dense.clear();
    }

    /// Decide (once) the representation for pattern `id`, whose PIL is
    /// `entries`; returns `true` for dense. The first call per `id`
    /// consults the policy, attempts the dense build, and counts the
    /// decision in the process-wide histogram; later calls are a tag
    /// load.
    pub fn decide(&mut self, id: usize, entries: &[(u32, u64)]) -> bool {
        match self.tags[id] {
            TAG_SPARSE => false,
            TAG_DENSE => true,
            _ => {
                let mut built = None;
                if self.policy.wants_dense(entries) {
                    built = match (self.kern, self.gap) {
                        (ResolvedKernel::Simd, Some(gap)) => DensePil::build_windowed(entries, gap),
                        _ => DensePil::build(entries),
                    };
                    if built.is_none() {
                        DENSE_FALLBACKS.fetch_add(1, Ordering::Relaxed);
                    }
                }
                match built {
                    Some(d) => {
                        DENSE_LISTS.fetch_add(1, Ordering::Relaxed);
                        self.dense.insert(id, d);
                        self.tags[id] = TAG_DENSE;
                        true
                    }
                    None => {
                        SPARSE_LISTS.fetch_add(1, Ordering::Relaxed);
                        self.tags[id] = TAG_SPARSE;
                        false
                    }
                }
            }
        }
    }

    /// The dense build for `id`, present iff [`ReprCache::decide`]
    /// returned `true` for it this generation.
    pub fn get(&self, id: usize) -> Option<&DensePil> {
        self.dense.get(&id)
    }

    /// [`ReprCache::decide`] and [`ReprCache::get`] in one step.
    pub fn dense_for(&mut self, id: usize, entries: &[(u32, u64)]) -> Option<&DensePil> {
        if self.decide(id, entries) {
            self.dense.get(&id)
        } else {
            None
        }
    }
}

static DENSE_LISTS: AtomicU64 = AtomicU64::new(0);
static SPARSE_LISTS: AtomicU64 = AtomicU64::new(0);
static DENSE_FALLBACKS: AtomicU64 = AtomicU64::new(0);

/// Process-wide totals of representation decisions — the
/// chosen-representation histogram. Deliberately *outside*
/// [`crate::result::MineStats`], which must stay representation-
/// invariant; these are diagnostics, read by `--metrics`, traces, and
/// the bench harness via snapshot deltas.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReprStats {
    /// Suffix lists joined through the dense prefix-sum probe.
    pub dense: u64,
    /// Suffix lists joined through the sparse sliding-window merge.
    pub sparse: u64,
    /// Lists the policy wanted dense but [`DensePil::build`] refused
    /// (total count above `u64`); counted in `sparse` as well.
    pub fallbacks: u64,
}

impl ReprStats {
    /// Decisions made between the `earlier` snapshot and this one.
    /// Saturating, so concurrent mines in other threads cannot wrap the
    /// difference below zero.
    pub fn since(self, earlier: ReprStats) -> ReprStats {
        ReprStats {
            dense: self.dense.saturating_sub(earlier.dense),
            sparse: self.sparse.saturating_sub(earlier.sparse),
            fallbacks: self.fallbacks.saturating_sub(earlier.fallbacks),
        }
    }

    /// Total decisions in the snapshot.
    pub fn total(self) -> u64 {
        self.dense.saturating_add(self.sparse)
    }

    /// Render this (delta) snapshot as the trace event for a run mined
    /// under `mode`.
    pub fn to_event(self, mode: PilRepr) -> crate::trace::ReprEvent {
        crate::trace::ReprEvent {
            mode: mode.to_string(),
            dense: self.dense,
            sparse: self.sparse,
            fallbacks: self.fallbacks,
        }
    }
}

/// Snapshot the process-wide representation histogram.
pub fn repr_stats() -> ReprStats {
    ReprStats {
        dense: DENSE_LISTS.load(Ordering::Relaxed),
        sparse: SPARSE_LISTS.load(Ordering::Relaxed),
        fallbacks: DENSE_FALLBACKS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perigap_seq::gen::iid::uniform;
    use perigap_seq::Alphabet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gap(n: usize, m: usize) -> GapRequirement {
        GapRequirement::new(n, m).unwrap()
    }

    #[test]
    fn reaches_fixed_point() {
        let s = uniform(&mut StdRng::seed_from_u64(41), Alphabet::Dna, 250);
        let g = gap(1, 3);
        let adaptive = adaptive_mpp(&s, g, 0.0008, 4, MppConfig::default()).unwrap();
        // The final n covers the longest pattern found.
        let final_n = *adaptive.n_trajectory.last().unwrap();
        assert!(final_n >= adaptive.outcome.longest_len().min(g.l1(250)));
        // Trajectory grows strictly.
        assert!(adaptive.n_trajectory.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn agrees_with_worst_case_when_converged() {
        let s = uniform(&mut StdRng::seed_from_u64(42), Alphabet::Dna, 150);
        let g = gap(2, 4);
        let rho = 0.0015;
        let adaptive = adaptive_mpp(&s, g, rho, 10, MppConfig::default()).unwrap();
        let worst = mpp(&s, g, rho, g.l1(150), MppConfig::default()).unwrap();
        // On these inputs the heuristic converges to the complete set.
        assert_eq!(adaptive.outcome.frequent.len(), worst.frequent.len());
        for f in &worst.frequent {
            assert!(adaptive.outcome.get(&f.pattern).is_some());
        }
    }

    #[test]
    fn initial_n_above_l1_is_clamped() {
        let s = uniform(&mut StdRng::seed_from_u64(43), Alphabet::Dna, 60);
        let g = gap(9, 12);
        let adaptive = adaptive_mpp(&s, g, 0.01, 1_000, MppConfig::default()).unwrap();
        assert!(adaptive.n_trajectory[0] <= g.l1(60).max(3));
    }

    #[test]
    fn policy_crossover_splits_dense_from_sparse() {
        let auto = ReprPolicy::default();
        // Fully occupied span, long enough: dense.
        let packed: Vec<(u32, u64)> = (1..=64).map(|x| (x, 1)).collect();
        assert!(auto.wants_dense(&packed));
        // 2% occupancy: sparse under Auto, dense only when forced.
        let thin: Vec<(u32, u64)> = (0..64).map(|k| (1 + k * 50, 1)).collect();
        assert!(!auto.wants_dense(&thin));
        assert!(ReprPolicy::of(PilRepr::Dense).wants_dense(&thin));
        assert!(!ReprPolicy::of(PilRepr::Sparse).wants_dense(&packed));
        // Tiny lists never densify under Auto.
        assert!(!auto.wants_dense(&[(1, 1), (2, 1)]));
        assert!(!auto.wants_dense(&[]));
        // Forced Dense still refuses pathological blow-up.
        let lone: Vec<(u32, u64)> = vec![(1, 1), (1_000_000, 1)];
        assert!(!ReprPolicy::of(PilRepr::Dense).wants_dense(&lone));
        // Crossover is tunable.
        let eager = ReprPolicy {
            crossover: 0.005,
            ..ReprPolicy::default()
        };
        assert!(eager.wants_dense(&thin));
    }

    #[test]
    fn cache_decides_once_and_resets_per_generation() {
        let packed: Vec<(u32, u64)> = (1..=64).map(|x| (x, 1)).collect();
        let before = repr_stats();
        let mut cache = ReprCache::new(ReprPolicy::default());
        cache.begin(2);
        assert!(cache.decide(0, &packed));
        assert!(cache.decide(0, &packed), "second call is a tag load");
        assert!(cache.get(0).is_some());
        assert!(cache.get(1).is_none(), "undecided ids have no build");
        assert!(cache.dense_for(1, &[(5, 1)]).is_none());
        // Exactly one dense and one sparse decision were counted
        // (other concurrent tests may add their own, hence >=).
        let delta = repr_stats().since(before);
        assert!(delta.dense >= 1 && delta.sparse >= 1);
        // begin() drops every decision and build.
        cache.begin(1);
        assert!(cache.get(0).is_none());
        assert_eq!(cache.policy().mode, PilRepr::Auto);
    }

    #[test]
    fn cache_counts_overflow_fallbacks() {
        // A list the policy wants dense but whose total overflows u64:
        // the decision must come back sparse and count a fallback.
        let hot: Vec<(u32, u64)> = (1..=8).map(|x| (x, u64::MAX / 4)).collect();
        assert!(ReprPolicy::default().wants_dense(&hot));
        let before = repr_stats();
        let mut cache = ReprCache::new(ReprPolicy::default());
        cache.begin(1);
        assert!(!cache.decide(0, &hot));
        assert!(cache.get(0).is_none());
        let delta = repr_stats().since(before);
        assert!(delta.fallbacks >= 1);
        assert!(delta.total() >= 1);
    }

    #[test]
    fn pil_repr_parses_and_displays() {
        for (text, mode) in [
            ("auto", PilRepr::Auto),
            ("sparse", PilRepr::Sparse),
            ("dense", PilRepr::Dense),
        ] {
            assert_eq!(text.parse::<PilRepr>().unwrap(), mode);
            assert_eq!(mode.to_string(), text);
        }
        assert!("densest".parse::<PilRepr>().is_err());
        assert_eq!(PilRepr::default(), PilRepr::Auto);
    }

    #[test]
    fn single_round_when_guess_is_good() {
        let s = uniform(&mut StdRng::seed_from_u64(44), Alphabet::Dna, 150);
        let g = gap(1, 2);
        // Worst-case first to learn the true longest.
        let no = mpp(&s, g, 0.001, g.l1(150), MppConfig::default())
            .unwrap()
            .longest_len();
        let adaptive = adaptive_mpp(&s, g, 0.001, no.max(3), MppConfig::default()).unwrap();
        assert_eq!(
            adaptive.n_trajectory.len(),
            1,
            "good guess needs no refinement"
        );
    }
}
