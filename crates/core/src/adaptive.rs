//! The adaptive-n strategy sketched at the end of Section 6.
//!
//! "If a user has no idea of a good n value, we could run MPP using a
//! small n … note the longest pattern discovered, use its length to
//! refine n and re-execute MPP. This process could continue until we
//! cannot refine n further." Each round with a small `n` is cheap, so a
//! few rounds still beat one worst-case run.
//!
//! Correctness note: a fixed point of this iteration is *heuristic* —
//! MPP with input `n` only guarantees completeness for lengths ≤ `n`,
//! so a frequent pattern longer than the fixed point could in principle
//! be missed if none of its length-`n` fragments surfaced. The paper
//! proposes the scheme on exactly those terms ("we do not explore this
//! approach further"); MPPm remains the sound way to choose `n`.

use crate::error::MineError;
use crate::gap::GapRequirement;
use crate::mpp::{mpp, MppConfig};
use crate::result::MineOutcome;
use perigap_seq::Sequence;
use std::time::Instant;

/// Outcome of an adaptive run, with the refinement trajectory.
#[derive(Clone, Debug)]
pub struct AdaptiveOutcome {
    /// The final mining outcome.
    pub outcome: MineOutcome,
    /// The `n` used at each round (first entry is `initial_n`).
    pub n_trajectory: Vec<usize>,
    /// Total wall-clock across rounds.
    pub total_elapsed: std::time::Duration,
}

/// Run MPP repeatedly, growing `n` to the longest pattern found, until
/// the estimate stops changing (or reaches `l1`).
///
/// `initial_n` is the first guess; the paper suggests 10.
pub fn adaptive_mpp(
    seq: &Sequence,
    gap: GapRequirement,
    rho: f64,
    initial_n: usize,
    config: MppConfig,
) -> Result<AdaptiveOutcome, MineError> {
    let started = Instant::now();
    let l1 = gap.l1(seq.len());
    let mut n = initial_n
        .max(config.start_level)
        .min(l1.max(config.start_level));
    let mut trajectory = vec![n];
    let mut outcome = mpp(seq, gap, rho, n, config)?;
    loop {
        let longest = outcome.longest_len().max(config.start_level);
        // Refine: the next n must cover everything seen so far.
        let next_n = longest.min(l1.max(config.start_level));
        if next_n <= n {
            break;
        }
        n = next_n;
        trajectory.push(n);
        outcome = mpp(seq, gap, rho, n, config)?;
    }
    Ok(AdaptiveOutcome {
        outcome,
        n_trajectory: trajectory,
        total_elapsed: started.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use perigap_seq::gen::iid::uniform;
    use perigap_seq::Alphabet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gap(n: usize, m: usize) -> GapRequirement {
        GapRequirement::new(n, m).unwrap()
    }

    #[test]
    fn reaches_fixed_point() {
        let s = uniform(&mut StdRng::seed_from_u64(41), Alphabet::Dna, 250);
        let g = gap(1, 3);
        let adaptive = adaptive_mpp(&s, g, 0.0008, 4, MppConfig::default()).unwrap();
        // The final n covers the longest pattern found.
        let final_n = *adaptive.n_trajectory.last().unwrap();
        assert!(final_n >= adaptive.outcome.longest_len().min(g.l1(250)));
        // Trajectory grows strictly.
        assert!(adaptive.n_trajectory.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn agrees_with_worst_case_when_converged() {
        let s = uniform(&mut StdRng::seed_from_u64(42), Alphabet::Dna, 150);
        let g = gap(2, 4);
        let rho = 0.0015;
        let adaptive = adaptive_mpp(&s, g, rho, 10, MppConfig::default()).unwrap();
        let worst = mpp(&s, g, rho, g.l1(150), MppConfig::default()).unwrap();
        // On these inputs the heuristic converges to the complete set.
        assert_eq!(adaptive.outcome.frequent.len(), worst.frequent.len());
        for f in &worst.frequent {
            assert!(adaptive.outcome.get(&f.pattern).is_some());
        }
    }

    #[test]
    fn initial_n_above_l1_is_clamped() {
        let s = uniform(&mut StdRng::seed_from_u64(43), Alphabet::Dna, 60);
        let g = gap(9, 12);
        let adaptive = adaptive_mpp(&s, g, 0.01, 1_000, MppConfig::default()).unwrap();
        assert!(adaptive.n_trajectory[0] <= g.l1(60).max(3));
    }

    #[test]
    fn single_round_when_guess_is_good() {
        let s = uniform(&mut StdRng::seed_from_u64(44), Alphabet::Dna, 150);
        let g = gap(1, 2);
        // Worst-case first to learn the true longest.
        let no = mpp(&s, g, 0.001, g.l1(150), MppConfig::default())
            .unwrap()
            .longest_len();
        let adaptive = adaptive_mpp(&s, g, 0.001, no.max(3), MppConfig::default()).unwrap();
        assert_eq!(
            adaptive.n_trajectory.len(),
            1,
            "good guess needs no refinement"
        );
    }
}
