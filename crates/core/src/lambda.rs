//! The pruning factors λ and λ′ (Theorems 1 and 2).
//!
//! If a length-`l` pattern `P` is frequent, every length-(l−d)
//! sub-pattern `Q` must have support ratio at least `λ(l,d) · ρs` where
//! `λ(l,d) = N_l / (N_(l−d) · W^d)` (Theorem 1 / Equation 2). With the
//! sequence statistic `e_m` (Theorem 2) the factor tightens to
//! `λ′(l,d) = N_l / (N_(l−d) · e_m^s · W^t)` with `s = ⌊d/m⌋`,
//! `t = d − s·m` — but only for *leading* sub-patterns
//! `Q = P[1] … P[l−d]`.
//!
//! Rather than multiplying λ back into ρs with floats, the miner uses
//! the equivalent exact test on support counts:
//!
//! ```text
//! sup(Q) ≥ λ(l,d)·ρs·N_(l−d)  ⇔  sup(Q) · W^d ≥ ρs · N_l
//! ```
//!
//! [`PruneBound`] packages that comparison with exact rational
//! arithmetic so threshold decisions can never flip with rounding.

use crate::counts::OffsetCounts;
use perigap_math::{BigRatio, BigUint};

/// λ(l, d) as an exact rational: `N_l / (N_(l−d) · W^d)`.
///
/// Returns 0 when `N_l = 0` (no length-`l` offset sequences exist).
///
/// # Panics
/// Panics if `d > l` or `N_(l−d) = 0` while `N_l > 0` (impossible for
/// valid inputs).
pub fn lambda(counts: &OffsetCounts, l: usize, d: usize) -> BigRatio {
    assert!(d <= l, "λ(l,d) requires d ≤ l");
    let n_l = counts.n(l);
    if n_l.is_zero() {
        return BigRatio::zero();
    }
    let w = counts.gap().flexibility() as u64;
    let mut denom = counts.n(l - d);
    assert!(!denom.is_zero(), "N_(l-d) must be positive when N_l is");
    denom = denom.mul_ref(&BigUint::from_u64(w).pow(d as u32));
    BigRatio::new(n_l, denom)
}

/// λ′(l, d) under Theorem 2: `N_l / (N_(l−d) · e_m^s · W^t)`.
///
/// `em` is the sequence statistic for window size `m` (see
/// [`crate::em`]); `s = ⌊d/m⌋`, `t = d − s·m`.
pub fn lambda_prime(counts: &OffsetCounts, l: usize, d: usize, m: usize, em: u64) -> BigRatio {
    assert!(d <= l, "λ'(l,d) requires d ≤ l");
    assert!(m >= 1, "m must be ≥ 1");
    assert!(
        em >= 1,
        "e_m is a max over counts of non-empty sets, so ≥ 1"
    );
    let n_l = counts.n(l);
    if n_l.is_zero() {
        return BigRatio::zero();
    }
    let w = counts.gap().flexibility() as u64;
    let s = d / m;
    let t = d - s * m;
    let mut denom = counts.n(l - d);
    assert!(!denom.is_zero(), "N_(l-d) must be positive when N_l is");
    denom = denom.mul_ref(&BigUint::from_u64(em).pow(s as u32));
    denom = denom.mul_ref(&BigUint::from_u64(w).pow(t as u32));
    BigRatio::new(n_l, denom)
}

/// An exact threshold test for one pruning level: decides
/// `sup ≥ λ·ρs·N_(l−d)` (equivalently `sup · divisor ≥ ρs · N_l`)
/// without constructing λ explicitly.
#[derive(Clone, Debug)]
pub struct PruneBound {
    /// `ρs · N_l` as an exact rational (numerator side of the test).
    rhs: BigRatio,
    /// `W^d` (Theorem 1) or `e_m^s · W^t` (Theorem 2).
    divisor: BigUint,
}

impl PruneBound {
    /// Theorem 1 bound for sub-patterns `d` characters shorter than a
    /// hypothetical frequent length-`l` pattern.
    pub fn theorem1(counts: &OffsetCounts, rho: &BigRatio, l: usize, d: usize) -> PruneBound {
        assert!(d <= l, "requires d ≤ l");
        let w = counts.gap().flexibility() as u64;
        PruneBound {
            rhs: rho.mul(&BigRatio::from_integer(counts.n(l))),
            divisor: BigUint::from_u64(w).pow(d as u32),
        }
    }

    /// Theorem 2 bound (leading sub-patterns only), using `e_m`.
    pub fn theorem2(
        counts: &OffsetCounts,
        rho: &BigRatio,
        l: usize,
        d: usize,
        m: usize,
        em: u64,
    ) -> PruneBound {
        assert!(d <= l, "requires d ≤ l");
        assert!(m >= 1 && em >= 1, "need m ≥ 1 and e_m ≥ 1");
        let w = counts.gap().flexibility() as u64;
        let s = d / m;
        let t = d - s * m;
        let divisor = BigUint::from_u64(em)
            .pow(s as u32)
            .mul_ref(&BigUint::from_u64(w).pow(t as u32));
        PruneBound {
            rhs: rho.mul(&BigRatio::from_integer(counts.n(l))),
            divisor,
        }
    }

    /// The plain frequency test `sup ≥ ρs · N_l` (divisor 1).
    pub fn exact(counts: &OffsetCounts, rho: &BigRatio, l: usize) -> PruneBound {
        PruneBound {
            rhs: rho.mul(&BigRatio::from_integer(counts.n(l))),
            divisor: BigUint::one(),
        }
    }

    /// Decide whether a support count passes the bound:
    /// `sup · divisor ≥ ρs · N_l`.
    pub fn admits(&self, sup: u64) -> bool {
        self.admits_u128(sup as u128)
    }

    /// [`PruneBound::admits`] for the full-width support counts the PIL
    /// machinery produces.
    pub fn admits_u128(&self, sup: u128) -> bool {
        let lhs = BigUint::from_u128(sup).mul_ref(&self.divisor);
        // rhs = num/den; lhs ≥ num/den ⇔ lhs·den ≥ num.
        lhs.mul_ref(self.rhs.denom()) >= *self.rhs.numer()
    }

    /// The smallest integer support that passes the bound (useful for
    /// reporting thresholds in the harness).
    pub fn min_support(&self) -> BigUint {
        // ceil(num / (den · divisor))
        let denom = self.rhs.denom().mul_ref(&self.divisor);
        ceil_div(self.rhs.numer(), &denom)
    }
}

/// One level's worth of prune machinery: the exact frequency test, the
/// Theorem 1 look-ahead bound toward level `n`, and `N_l` as `f64` for
/// ratio reporting.
#[derive(Clone)]
pub(crate) struct BoundRow {
    /// `sup ≥ ρ·N_l` — decides frequency at this level.
    pub exact: PruneBound,
    /// `sup·W^(n−l) ≥ ρ·N_n` — decides extension toward level `n`
    /// (collapses to `exact` once `l ≥ n`).
    pub lhat: PruneBound,
    /// `N_l` as `f64`, the ratio denominator.
    pub n_f64: f64,
}

/// Lazily built per-level [`BoundRow`] table, shared by the BFS and DFS
/// engines so each bound is constructed once per depth instead of once
/// per candidate. The two engines consulting the same rows is what
/// keeps their keep/frequent decisions — and therefore their stats —
/// identical.
pub(crate) struct BoundTable<'a> {
    counts: &'a OffsetCounts,
    rho: &'a BigRatio,
    n: usize,
    rows: Vec<Option<BoundRow>>,
}

impl<'a> BoundTable<'a> {
    /// A table for mining toward level `n` under threshold `rho`.
    pub fn new(counts: &'a OffsetCounts, rho: &'a BigRatio, n: usize) -> BoundTable<'a> {
        BoundTable {
            counts,
            rho,
            n,
            rows: Vec::new(),
        }
    }

    /// The bounds for `level`, built on first use.
    pub fn row(&mut self, level: usize) -> &BoundRow {
        if level >= self.rows.len() {
            self.rows.resize_with(level + 1, || None);
        }
        if self.rows[level].is_none() {
            let exact = PruneBound::exact(self.counts, self.rho, level);
            let lhat = if level < self.n {
                PruneBound::theorem1(self.counts, self.rho, self.n, self.n - level)
            } else {
                exact.clone()
            };
            self.rows[level] = Some(BoundRow {
                exact,
                lhat,
                n_f64: self.counts.n_f64(level),
            });
        }
        self.rows[level].as_ref().expect("row just built")
    }
}

/// `⌈a / b⌉` for big integers (b > 0) via shift-and-subtract long
/// division on the top bits.
fn ceil_div(a: &BigUint, b: &BigUint) -> BigUint {
    if a.is_zero() {
        return BigUint::zero();
    }
    if let Some(small) = b.to_u64() {
        let (q, r) = a.div_rem_u64(small);
        return if r == 0 { q } else { &q + &BigUint::one() };
    }
    // Binary long division.
    let mut rem = a.clone();
    let mut quot = BigUint::zero();
    let shift_max = a.bit_len().saturating_sub(b.bit_len());
    for s in (0..=shift_max).rev() {
        let d = b.shl_bits(s);
        if let Some(next) = rem.checked_sub(&d) {
            rem = next;
            quot.add_assign_ref(&BigUint::one().shl_bits(s));
        }
    }
    if !rem.is_zero() {
        quot.add_assign_ref(&BigUint::one());
    }
    quot
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gap::GapRequirement;

    fn counts(seq_len: usize, n: usize, m: usize) -> OffsetCounts {
        OffsetCounts::new(seq_len, GapRequirement::new(n, m).unwrap())
    }

    #[test]
    fn lambda_closed_form_matches_equation4() {
        // For l ≤ l1: λ(l,d) = [L−(l−1)(c)]/[L−(l−d−1)(c)], c = (M+N)/2+1.
        let c = counts(1000, 9, 12);
        let cc = (12.0 + 9.0) / 2.0 + 1.0;
        for (l, d) in [(13, 3), (10, 2), (20, 10), (5, 4)] {
            let expected =
                (1000.0 - (l as f64 - 1.0) * cc) / (1000.0 - (l as f64 - d as f64 - 1.0) * cc);
            let got = lambda(&c, l, d).to_f64();
            assert!(
                (got - expected).abs() < 1e-12,
                "λ({l},{d}) = {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn lambda_is_at_most_one() {
        let c = counts(200, 3, 6);
        for l in 1..=c.l2() {
            // Theorem 1 concerns non-empty sub-patterns: d < l.
            for d in 0..l.min(6) {
                let v = lambda(&c, l, d);
                assert!(v <= BigRatio::one(), "λ({l},{d}) > 1");
            }
        }
    }

    #[test]
    fn lambda_transitivity_equation3() {
        // λ(l, d1+d2) = λ(l, d1) · λ(l−d1, d2).
        let c = counts(500, 4, 7);
        for (l, d1, d2) in [(12, 3, 4), (20, 5, 5), (8, 0, 3), (15, 7, 8)] {
            let lhs = lambda(&c, l, d1 + d2);
            let rhs = lambda(&c, l, d1).mul(&lambda(&c, l - d1, d2));
            assert_eq!(lhs, rhs, "transitivity fails at l={l}, d1={d1}, d2={d2}");
        }
    }

    #[test]
    fn lambda_zero_when_no_offset_sequences() {
        let c = counts(20, 9, 12);
        assert!(c.n(c.l2() + 1).is_zero());
        assert!(lambda(&c, c.l2() + 1, 2).is_zero());
    }

    #[test]
    fn lambda_prime_tightens_lambda() {
        let c = counts(1000, 9, 12);
        // W = 4, m = 3, e_m = 2 < W^m: λ′ multiplies λ by (W^m/e_m)^s ≥ 1.
        let base = lambda(&c, 13, 8);
        let tight = lambda_prime(&c, 13, 8, 3, 2);
        assert!(tight >= base, "λ′ must be ≥ λ");
        // s = ⌊8/3⌋ = 2, t = 2 → ratio = (W^3/e)^2 = (64/2)^2 = 1024.
        let ratio = tight.div(&base);
        assert_eq!(ratio, BigRatio::from_u64s(1024, 1));
    }

    #[test]
    fn lambda_prime_with_em_equal_wm_reduces_to_lambda() {
        let c = counts(1000, 9, 12);
        // e_m = W^m means Theorem 2 gives no improvement.
        let em = 4u64.pow(3);
        assert_eq!(lambda_prime(&c, 13, 9, 3, em), lambda(&c, 13, 9));
    }

    #[test]
    fn prune_bound_matches_lambda_rho() {
        let c = counts(1000, 9, 12);
        let rho = BigRatio::from_f64_exact(0.00003);
        let (l, d) = (13, 5);
        let bound = PruneBound::theorem1(&c, &rho, l, d);
        // Compare against the literal λ·ρs·N_(l−d) formulation.
        let literal = lambda(&c, l, d)
            .mul(&rho)
            .mul(&BigRatio::from_integer(c.n(l - d)));
        let threshold = bound.min_support();
        // min_support is the smallest integer ≥ literal.
        assert!(literal.cmp_integer(&threshold) != std::cmp::Ordering::Greater);
        let below = threshold.checked_sub(&BigUint::one()).unwrap();
        assert!(literal.cmp_integer(&below) == std::cmp::Ordering::Greater);
        // admits agrees with min_support.
        let t = threshold.to_u64().unwrap();
        assert!(bound.admits(t));
        assert!(!bound.admits(t - 1));
    }

    #[test]
    fn exact_bound_is_plain_frequency_test() {
        let c = counts(100, 1, 2);
        let rho = BigRatio::from_u64s(1, 10);
        let bound = PruneBound::exact(&c, &rho, 2);
        let n2 = c.n(2).to_u64().unwrap();
        let threshold = n2.div_ceil(10);
        assert!(bound.admits(threshold));
        assert!(!bound.admits(threshold - 1));
    }

    #[test]
    fn theorem2_bound_is_no_looser() {
        let c = counts(1000, 9, 12);
        let rho = BigRatio::from_f64_exact(0.00003);
        let b1 = PruneBound::theorem1(&c, &rho, 13, 10);
        let b2 = PruneBound::theorem2(&c, &rho, 13, 10, 3, 2);
        // Theorem 2's divisor is smaller, so its minimum support is larger.
        assert!(b2.min_support() >= b1.min_support());
    }

    #[test]
    fn bound_table_rows_match_direct_construction() {
        let c = counts(500, 2, 5);
        let rho = BigRatio::from_f64_exact(0.001);
        let n = 8;
        let mut table = BoundTable::new(&c, &rho, n);
        for level in [3usize, 5, 8, 10, 3] {
            let row = table.row(level);
            let exact = PruneBound::exact(&c, &rho, level);
            assert_eq!(
                row.exact.min_support(),
                exact.min_support(),
                "level {level}"
            );
            let lhat = if level < n {
                PruneBound::theorem1(&c, &rho, n, n - level)
            } else {
                exact
            };
            assert_eq!(row.lhat.min_support(), lhat.min_support(), "level {level}");
            assert!((row.n_f64 - c.n_f64(level)).abs() <= row.n_f64.abs() * 1e-12);
        }
    }

    #[test]
    fn ceil_div_cases() {
        let a = BigUint::from_u64(10);
        assert_eq!(ceil_div(&a, &BigUint::from_u64(3)).to_u64(), Some(4));
        assert_eq!(ceil_div(&a, &BigUint::from_u64(5)).to_u64(), Some(2));
        assert_eq!(ceil_div(&BigUint::zero(), &a).to_u64(), Some(0));
        // Multi-word divisor path.
        let big = BigUint::from_u64(7).pow(60);
        let d = BigUint::from_u64(7).pow(30);
        assert_eq!(ceil_div(&big, &d), BigUint::from_u64(7).pow(30));
        let bigger = &big + &BigUint::one();
        assert_eq!(
            ceil_div(&bigger, &d),
            &BigUint::from_u64(7).pow(30) + &BigUint::one()
        );
    }
}
