//! Multi-sequence mining: periodic patterns frequent across a
//! *collection* of sequences.
//!
//! The paper mines within a single sequence and contrasts that with the
//! transactional sequence miners (GSP, SPADE, PrefixSpan) whose support
//! is the number of database sequences containing a pattern. This
//! module combines the two views, which is what a protein-family or
//! multi-genome study actually needs: a pattern is **collection-
//! frequent** when it is frequent — in the paper's within-sequence
//! ratio sense, threshold `ρs` — in at least `min_sequences` of the
//! input sequences.
//!
//! Pruning stays sound: Theorem 1 applies per sequence, so if `P` is
//! frequent in a given sequence, every sub-pattern of `P` passes that
//! sequence's relaxed bound. A candidate can therefore be dropped once
//! the number of sequences whose relaxed bound it passes falls below
//! `min_sequences`.

use crate::counts::OffsetCounts;
use crate::error::MineError;
use crate::gap::GapRequirement;
use crate::lambda::PruneBound;
use crate::mpp::MppConfig;
use crate::pattern::Pattern;
use crate::pil::Pil;
use crate::trace::{CompleteEvent, LevelEvent, MineObserver, NoopObserver};
use perigap_math::BigRatio;
use perigap_seq::Sequence;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// One collection-frequent pattern with its per-sequence evidence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CollectionPattern {
    /// The pattern.
    pub pattern: Pattern,
    /// Indices of the sequences in which it is frequent.
    pub frequent_in: Vec<usize>,
    /// Per-sequence supports, indexed like the input collection
    /// (0 where the pattern never occurs).
    pub supports: Vec<u128>,
}

impl CollectionPattern {
    /// Number of sequences in which the pattern is frequent.
    pub fn sequence_count(&self) -> usize {
        self.frequent_in.len()
    }
}

/// Result of a collection mining run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CollectionOutcome {
    /// Collection-frequent patterns, sorted by length then codes.
    pub patterns: Vec<CollectionPattern>,
}

impl CollectionOutcome {
    /// Longest collection-frequent pattern length.
    pub fn longest_len(&self) -> usize {
        self.patterns
            .iter()
            .map(|p| p.pattern.len())
            .max()
            .unwrap_or(0)
    }

    /// Look up a pattern.
    pub fn get(&self, pattern: &Pattern) -> Option<&CollectionPattern> {
        self.patterns.iter().find(|p| &p.pattern == pattern)
    }

    /// The closed subset of the collection-frequent patterns, in the
    /// original order. The collection analogue of
    /// [`crate::result::MineOutcome::closed_frequent`]: a pattern is
    /// dropped iff some collection-frequent pattern one symbol longer
    /// extends it (as prefix or suffix) with an **identical**
    /// per-sequence support vector — the shorter pattern then carries
    /// no evidence of its own in any sequence.
    pub fn closed_patterns(&self) -> Vec<CollectionPattern> {
        let by_codes: HashMap<&[u8], &[u128]> = self
            .patterns
            .iter()
            .map(|p| (p.pattern.codes(), p.supports.as_slice()))
            .collect();
        let mut dropped = std::collections::HashSet::new();
        for p in &self.patterns {
            let codes = p.pattern.codes();
            if codes.len() < 2 {
                continue;
            }
            for sub in [&codes[..codes.len() - 1], &codes[1..]] {
                if by_codes.get(sub) == Some(&p.supports.as_slice()) {
                    dropped.insert(sub.to_vec());
                }
            }
        }
        self.patterns
            .iter()
            .filter(|p| !dropped.contains(p.pattern.codes()))
            .cloned()
            .collect()
    }
}

/// Mine patterns frequent (ratio ≥ `rho`) in at least `min_sequences`
/// of `sequences`, with Theorem 1 pruning driven by `n` per sequence.
///
/// All sequences must share one alphabet. Sequences too short to hold a
/// start-level pattern simply never vote.
///
/// Each sequence's verdicts are independent of the rest of the
/// collection: a pattern is reported frequent in sequence `j` exactly
/// when a standalone mine of `j` (same `gap`, `rho`, `n`, config)
/// would report it, so with `min_sequences == 1` the result is the
/// union of the per-sequence runs and with `min_sequences ==
/// sequences.len()` their intersection. This is also what makes
/// [`crate::corpus::mine_corpus`]'s shard-at-a-time fan-out merge
/// bit-identically with this function.
pub fn mine_collection(
    sequences: &[Sequence],
    gap: GapRequirement,
    rho: f64,
    min_sequences: usize,
    n: usize,
    config: MppConfig,
) -> Result<CollectionOutcome, MineError> {
    mine_collection_traced(
        sequences,
        gap,
        rho,
        min_sequences,
        n,
        config,
        &mut NoopObserver,
    )
}

/// [`mine_collection`] with a [`MineObserver`] attached.
///
/// The collection engine has no nominal candidate universe (patterns
/// are unioned across sequences), so each level event reports
/// `candidates == evaluated` — the number of patterns with at least one
/// non-empty per-sequence PIL — and `saturated` is always `false` (the
/// public [`Pil`] path clamps without a stats channel; see
/// [`Pil::join`]).
pub fn mine_collection_traced<O: MineObserver>(
    sequences: &[Sequence],
    gap: GapRequirement,
    rho: f64,
    min_sequences: usize,
    n: usize,
    config: MppConfig,
    observer: &mut O,
) -> Result<CollectionOutcome, MineError> {
    let started = Instant::now();
    if !(rho > 0.0 && rho <= 1.0) {
        return Err(MineError::InvalidThreshold(rho));
    }
    if sequences.is_empty() || min_sequences == 0 || min_sequences > sequences.len() {
        observer.on_complete(&CompleteEvent {
            frequent: 0,
            levels: 0,
            total_candidates: 0,
            n_used: n,
            support_saturated: false,
            peak_arena_bytes: 0,
            kernel: String::new(),
            top_k: None,
            floor_raises: 0,
            pruned_by_floor: 0,
            pruned_by_target: 0,
            total_elapsed: started.elapsed(),
        });
        return Ok(CollectionOutcome::default());
    }
    let alphabet = sequences[0].alphabet();
    assert!(
        sequences.iter().all(|s| s.alphabet() == alphabet),
        "collection sequences must share an alphabet"
    );
    let rho_exact = BigRatio::from_f64_exact(rho);
    let start = config.start_level;

    // Per-sequence counting tables and clamped pruning targets.
    let counts: Vec<OffsetCounts> = sequences
        .iter()
        .map(|s| OffsetCounts::new(s.len(), gap))
        .collect();
    let targets: Vec<usize> = counts
        .iter()
        .map(|c| n.clamp(start, c.l1().max(start)))
        .collect();
    let hard_cap = config
        .max_level
        .unwrap_or(usize::MAX)
        .min(counts.iter().map(|c| c.l2()).max().unwrap_or(start));

    // Seed: per-sequence level-3 PILs, unioned across sequences.
    // current[pattern] = (PIL per sequence, alive flag per sequence).
    //
    // The alive flags keep each sequence's verdicts independent of the
    // rest of the collection: sequence `j`'s line for a pattern dies
    // the first time `j`'s own bound rejects it — exactly as a
    // standalone mine of `j` would prune it — even when another
    // sequence's vote keeps the joint pattern on the frontier. Without
    // them a deep pattern could be "resurrected" for `j` at a level
    // its own ancestors never survived (the per-level threshold
    // `ρ·N_l` falls with `l`, so support anti-monotonicity does not
    // protect us), and membership of `frequent_in` would depend on
    // which other sequences happen to share the corpus.
    let mut current: HashMap<Pattern, (Vec<Pil>, Vec<bool>)> = HashMap::new();
    for (j, seq) in sequences.iter().enumerate() {
        if seq.len() < gap.min_span(start) {
            continue;
        }
        for (pattern, pil) in Pil::build_all(seq, gap, start) {
            current
                .entry(pattern)
                .or_insert_with(|| {
                    (
                        vec![Pil::new(); sequences.len()],
                        vec![true; sequences.len()],
                    )
                })
                .0[j] = pil;
        }
    }

    let mut out = Vec::new();
    let mut level = start;
    let mut level_events = 0usize;
    let mut total_candidates: u128 = 0;
    while level <= hard_cap && !current.is_empty() {
        let level_started = Instant::now();
        // Per-sequence bounds at this level.
        let exact_bounds: Vec<PruneBound> = counts
            .iter()
            .map(|c| PruneBound::exact(c, &rho_exact, level))
            .collect();
        let lhat_bounds: Vec<PruneBound> = counts
            .iter()
            .zip(&targets)
            .map(|(c, &t)| {
                if level < t {
                    PruneBound::theorem1(c, &rho_exact, t, t - level)
                } else {
                    PruneBound::exact(c, &rho_exact, level)
                }
            })
            .collect();

        let evaluated = current.len();
        let mut kept: Vec<(Pattern, Vec<Pil>, Vec<bool>)> = Vec::new();
        let mut frequent_here = 0usize;
        for (pattern, (pils, alive)) in current.drain() {
            let mut frequent_in = Vec::new();
            let mut votes = 0usize;
            let mut alive_next = vec![false; pils.len()];
            for (j, pil) in pils.iter().enumerate() {
                if !alive[j] {
                    continue;
                }
                let sup = pil.support();
                if counts[j].n(level).is_zero() {
                    continue;
                }
                if exact_bounds[j].admits_u128(sup) {
                    frequent_in.push(j);
                }
                if lhat_bounds[j].admits_u128(sup) {
                    votes += 1;
                    alive_next[j] = true;
                }
            }
            if frequent_in.len() >= min_sequences {
                out.push(CollectionPattern {
                    pattern: pattern.clone(),
                    frequent_in,
                    supports: pils.iter().map(Pil::support).collect(),
                });
                frequent_here += 1;
            }
            if votes >= min_sequences {
                kept.push((pattern, pils, alive_next));
            }
        }
        let emit_level = |observer: &mut O, join_elapsed: Duration, elapsed: Duration| {
            observer.on_level(&LevelEvent {
                level,
                candidates: evaluated as u128,
                evaluated,
                frequent: frequent_here,
                kept: kept.len(),
                pruned_bound: evaluated - kept.len(),
                pruned_support: evaluated - frequent_here,
                arena_bytes: 0,
                joins: 0,
                probed: 0,
                reallocs: 0,
                bytes_moved: 0,
                join_elapsed,
                elapsed,
                saturated: false,
            });
        };
        level_events += 1;
        total_candidates += evaluated as u128;
        if kept.is_empty() || level == hard_cap {
            emit_level(observer, Duration::ZERO, level_started.elapsed());
            break;
        }

        // Join per the single-sequence engine, sequence by sequence.
        let join_started = Instant::now();
        let mut by_prefix: HashMap<&[u8], Vec<usize>> = HashMap::new();
        for (idx, (pattern, _, _)) in kept.iter().enumerate() {
            by_prefix
                .entry(&pattern.codes()[..pattern.len() - 1])
                .or_default()
                .push(idx);
        }
        let mut next: HashMap<Pattern, (Vec<Pil>, Vec<bool>)> = HashMap::new();
        for (p1, pils1, alive1) in &kept {
            if let Some(partners) = by_prefix.get(&p1.codes()[1..]) {
                for &idx in partners {
                    let (p2, pils2, alive2) = &kept[idx];
                    let candidate = p1.join(p2).expect("overlap holds by construction");
                    let joined: Vec<Pil> = pils1
                        .iter()
                        .zip(pils2)
                        .map(|(a, b)| Pil::join(a, b, gap))
                        .collect();
                    // A sequence's line survives the join only where it
                    // kept BOTH parents — the same condition a
                    // standalone mine of that sequence needs to form
                    // the candidate at all.
                    let alive: Vec<bool> =
                        alive1.iter().zip(alive2).map(|(&a, &b)| a && b).collect();
                    if joined.iter().any(|p| !p.is_empty()) {
                        next.insert(candidate, (joined, alive));
                    }
                }
            }
        }
        emit_level(observer, join_started.elapsed(), level_started.elapsed());
        current = next;
        level += 1;
    }

    out.sort_by(|a, b| {
        (a.pattern.len(), a.pattern.codes()).cmp(&(b.pattern.len(), b.pattern.codes()))
    });
    observer.on_complete(&CompleteEvent {
        frequent: out.len(),
        levels: level_events,
        total_candidates,
        n_used: n,
        support_saturated: false,
        peak_arena_bytes: 0,
        kernel: String::new(),
        top_k: None,
        floor_raises: 0,
        pruned_by_floor: 0,
        pruned_by_target: 0,
        total_elapsed: started.elapsed(),
    });
    Ok(CollectionOutcome { patterns: out })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mppm::mppm;
    use perigap_seq::gen::iid::uniform;
    use perigap_seq::Alphabet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gap(n: usize, m: usize) -> GapRequirement {
        GapRequirement::new(n, m).unwrap()
    }

    fn random_seqs(n: usize, len: usize, base_seed: u64) -> Vec<Sequence> {
        (0..n)
            .map(|i| {
                uniform(
                    &mut StdRng::seed_from_u64(base_seed + i as u64),
                    Alphabet::Dna,
                    len,
                )
            })
            .collect()
    }

    #[test]
    fn min_sequences_one_is_union_of_single_runs() {
        let seqs = random_seqs(3, 100, 100);
        let g = gap(1, 2);
        let rho = 0.003;
        let collection = mine_collection(&seqs, g, rho, 1, 20, MppConfig::default()).unwrap();
        // Union of per-sequence frequent sets.
        let mut union: std::collections::HashSet<Pattern> = Default::default();
        for seq in &seqs {
            let outcome = mppm(seq, g, rho, 2, MppConfig::default()).unwrap();
            union.extend(outcome.frequent.into_iter().map(|f| f.pattern));
        }
        let mined: std::collections::HashSet<Pattern> = collection
            .patterns
            .iter()
            .map(|p| p.pattern.clone())
            .collect();
        assert_eq!(mined, union);
    }

    #[test]
    fn min_sequences_all_is_intersection() {
        let seqs = random_seqs(3, 100, 200);
        let g = gap(1, 2);
        let rho = 0.003;
        let collection = mine_collection(&seqs, g, rho, 3, 20, MppConfig::default()).unwrap();
        let mut per_seq: Vec<std::collections::HashSet<Pattern>> = Vec::new();
        for seq in &seqs {
            let outcome = mppm(seq, g, rho, 2, MppConfig::default()).unwrap();
            per_seq.push(outcome.frequent.into_iter().map(|f| f.pattern).collect());
        }
        let intersection: std::collections::HashSet<Pattern> = per_seq[0]
            .iter()
            .filter(|p| per_seq[1..].iter().all(|s| s.contains(*p)))
            .cloned()
            .collect();
        let mined: std::collections::HashSet<Pattern> = collection
            .patterns
            .iter()
            .map(|p| p.pattern.clone())
            .collect();
        assert_eq!(mined, intersection);
    }

    #[test]
    fn per_sequence_evidence_is_accurate() {
        let seqs = random_seqs(2, 120, 300);
        let g = gap(1, 3);
        let collection = mine_collection(&seqs, g, 0.002, 1, 15, MppConfig::default()).unwrap();
        assert!(!collection.patterns.is_empty());
        for cp in &collection.patterns {
            for (j, seq) in seqs.iter().enumerate() {
                assert_eq!(
                    cp.supports[j],
                    crate::naive::support_dp(seq, g, &cp.pattern),
                    "support in sequence {j}"
                );
            }
            assert!(!cp.frequent_in.is_empty());
            assert!(cp.sequence_count() <= seqs.len());
        }
    }

    #[test]
    fn shared_planted_motif_is_found_everywhere() {
        use perigap_seq::gen::periodic::{plant_periodic, PeriodicMotif};
        let mut seqs = random_seqs(4, 400, 400);
        let mut rng = StdRng::seed_from_u64(9);
        for seq in &mut seqs {
            let spec = PeriodicMotif {
                motif: vec![2, 1, 2],
                gap_min: 2,
                gap_max: 4,
                occurrences: 40,
            };
            plant_periodic(&mut rng, seq, &spec);
        }
        let g = gap(2, 4);
        let collection = mine_collection(&seqs, g, 0.002, 4, 10, MppConfig::default()).unwrap();
        let gcg = Pattern::from_codes(vec![2, 1, 2]);
        let found = collection
            .get(&gcg)
            .expect("planted GCG frequent in all four");
        assert_eq!(found.sequence_count(), 4);
    }

    #[test]
    fn degenerate_inputs() {
        let g = gap(1, 2);
        let empty: Vec<Sequence> = Vec::new();
        assert!(mine_collection(&empty, g, 0.01, 1, 5, MppConfig::default())
            .unwrap()
            .patterns
            .is_empty());
        let seqs = random_seqs(2, 50, 500);
        // min_sequences of 0 or more than the collection size → empty.
        assert!(mine_collection(&seqs, g, 0.01, 0, 5, MppConfig::default())
            .unwrap()
            .patterns
            .is_empty());
        assert!(mine_collection(&seqs, g, 0.01, 3, 5, MppConfig::default())
            .unwrap()
            .patterns
            .is_empty());
        assert!(mine_collection(&seqs, g, 0.0, 1, 5, MppConfig::default()).is_err());
    }

    /// Differential oracle for the collection closed filter: the
    /// hash-probe implementation must agree with the obvious O(n²)
    /// scan over the full collection-frequent set.
    #[test]
    fn closed_patterns_match_naive_scan() {
        let seqs = vec![
            Sequence::dna(&"ACGTT".repeat(50)).unwrap(),
            Sequence::dna(&"ACGTT".repeat(40)).unwrap(),
            Sequence::dna(&"ATGTT".repeat(45)).unwrap(),
        ];
        let g = gap(1, 3);
        let collection = mine_collection(&seqs, g, 0.005, 2, 10, MppConfig::default()).unwrap();
        assert!(
            collection.patterns.len() > 10,
            "fixture must mine a non-trivial set"
        );

        let naive: Vec<&CollectionPattern> = collection
            .patterns
            .iter()
            .filter(|p| {
                !collection.patterns.iter().any(|q| {
                    q.pattern.len() == p.pattern.len() + 1
                        && q.supports == p.supports
                        && (p.pattern.is_prefix_of(&q.pattern)
                            || q.pattern.codes()[1..] == *p.pattern.codes())
                })
            })
            .collect();
        let fast = collection.closed_patterns();
        assert!(
            fast.len() < collection.patterns.len(),
            "filter must bite on a repeat-heavy fixture"
        );
        assert_eq!(fast.len(), naive.len());
        for (a, b) in fast.iter().zip(naive) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn short_sequences_never_vote() {
        let mut seqs = random_seqs(2, 100, 600);
        seqs.push(Sequence::dna("ACG").unwrap()); // too short for level 3 spans
        let g = gap(2, 3);
        let collection = mine_collection(&seqs, g, 0.005, 1, 10, MppConfig::default()).unwrap();
        for cp in &collection.patterns {
            assert!(!cp.frequent_in.contains(&2), "tiny sequence cannot vote");
        }
    }
}
