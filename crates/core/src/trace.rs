//! Observability for the mining engines — zero-cost when off.
//!
//! The paper's whole evaluation is about *pruning power*: how many
//! candidates survive each level under the λ (Theorem 1) and λ′
//! (Theorem 2) bounds. This module makes those series — plus seed
//! construction cost, worker-pool behaviour and the `e_m` computation —
//! first-class outputs of every mine, without touching the hot path
//! when nobody is listening.
//!
//! ## Design
//!
//! [`MineObserver`] is a trait with empty default methods. The engines
//! (`run_levelwise`, `run_parallel`, `mine_collection`) are generic
//! over `O: MineObserver`, so a run with [`NoopObserver`] monomorphizes
//! every callback to an empty inlined body: the compiled hot loop is
//! identical to the pre-observability one. The public `mpp`/`mppm`/
//! `mpp_parallel` entry points call the `_traced` variants with
//! [`NoopObserver`]; attaching a real observer is opt-in.
//!
//! Two sinks ship with the crate:
//!
//! - [`JsonlObserver`] streams one JSON object per event to any
//!   `io::Write` (the `pgmine mine --trace <path>` file);
//! - [`MetricsObserver`] aggregates the events in memory and renders a
//!   human-readable summary (`pgmine mine --metrics`).
//!
//! Observers compose: `(A, B)` fans every event out to both, and
//! `Option<O>` is a no-op when `None`.
//!
//! ## JSONL schema
//!
//! Every line is a flat JSON object with an `"event"` discriminator:
//!
//! | event | fields |
//! |---|---|
//! | `seed` | `level`, `patterns`, `pil_entries`, `arena_bytes`, `elapsed_ms` |
//! | `level` | `level`, `candidates`, `evaluated`, `frequent`, `kept`, `pruned_bound`, `pruned_support`, `arena_bytes`, `joins`, `probed`, `reallocs`, `bytes_moved`, `join_ms`, `elapsed_ms`, `saturated` |
//! | `pool` | `level`, `chunks`, `workers` (array of `{worker, chunks, candidates, busy_ms, idle_ms}`) |
//! | `subtree` | `index`, `level`, `patterns`, `deepest`, `evaluated`, `frequent`, `peak_arena_bytes`, `batches`, `batch_candidates`, `elapsed_ms` |
//! | `em` | `m`, `em`, `elapsed_ms` |
//! | `repr` | `mode`, `dense`, `sparse`, `fallbacks` |
//! | `spill` | `level`, `records`, `bytes`, `live_bytes`, `watermark_bytes`, `elapsed_ms` |
//! | `restore` | `record`, `bytes`, `patterns`, `elapsed_ms` |
//! | `warning` | `kind`, `message` |
//! | `query` | `kind`, `ok`, `results`, `latency_ms` |
//! | `abort` | `message` |
//! | `summary` | `frequent`, `levels`, `total_candidates`, `n_used`, `support_saturated`, `peak_arena_bytes`, `kernel`, `total_ms` |
//!
//! `level` events appear in strictly increasing level order and the
//! `summary` line is last; [`validate_trace`] checks both plus the
//! totals-vs-levels consistency, and backs the `pgmine trace-check`
//! command and the CI smoke job. A trace that ends in an `abort` line
//! (a mine cut short by e.g. [`crate::MineError::MemoryCeiling`])
//! carries no `summary`; the abort must then be the final line.

use crate::result::MineOutcome;
use std::fmt::Write as _;
use std::io;
use std::time::Duration;

/// Seed construction: the level-`start` scan that feeds the level-wise
/// engine.
#[derive(Clone, Debug)]
pub struct SeedEvent {
    /// The start level (pattern length of the seed generation).
    pub level: usize,
    /// Patterns with non-empty PILs in the seed generation.
    pub patterns: usize,
    /// Total PIL entries across the generation.
    pub pil_entries: usize,
    /// Approximate bytes held by the generation's arena buffers.
    pub arena_bytes: usize,
    /// Wall-clock time of the seed scan.
    pub elapsed: Duration,
}

/// One level of the level-wise engine: the paper's pruning-power
/// counters (Figures 4–5, Table 3) plus timings.
#[derive(Clone, Debug)]
pub struct LevelEvent {
    /// Pattern length at this level.
    pub level: usize,
    /// Nominal candidates at this level (`σ^start` for the seed level,
    /// generated-candidate count afterwards) — `LevelStats::candidates`.
    pub candidates: u128,
    /// Patterns with non-empty PILs actually evaluated.
    pub evaluated: usize,
    /// Patterns meeting the exact frequency threshold
    /// (`LevelStats::frequent`).
    pub frequent: usize,
    /// Patterns meeting the relaxed λ/λ′ bound and carried into
    /// candidate generation (`LevelStats::extended`).
    pub kept: usize,
    /// `evaluated − kept`: pruned by the λ/λ′ bound.
    pub pruned_bound: usize,
    /// `evaluated − frequent`: below the exact support threshold.
    pub pruned_support: usize,
    /// Approximate arena bytes live once this level settled (engine-
    /// dependent: the breadth-first engines report parent + candidate
    /// arenas, the hybrid engine the surviving arenas only).
    pub arena_bytes: usize,
    /// Join-kernel invocations in the fan-out that generated this
    /// level's members (zero for the seed level, whose PILs come from
    /// the sequence scan). Physical diagnostics: `joins`, `probed`,
    /// `reallocs` and `bytes_moved` vary with the representation,
    /// kernel, and batching choices — unlike the candidate counters
    /// they are *not* part of the engine-invariant `MineStats`.
    pub joins: u64,
    /// Probe positions scanned across those joins (left offsets walked
    /// plus right entries absorbed by the sliding windows).
    pub probed: u64,
    /// Output-buffer reallocations the joins triggered.
    pub reallocs: u64,
    /// Bytes copied by those reallocations.
    pub bytes_moved: u64,
    /// Time spent in the join fan-out generating the next level (zero
    /// when the level is terminal).
    pub join_elapsed: Duration,
    /// Whole-level wall clock (filter + join).
    pub elapsed: Duration,
    /// True when a support counter in this generation saturated — the
    /// reported counts are lower bounds (see `MineStats::support_saturated`).
    pub saturated: bool,
}

/// One worker's share of a level's chunk stealing. Worker 0 is the
/// main thread; ids 1.. are pool threads.
#[derive(Clone, Debug)]
pub struct WorkerLevelStats {
    /// Worker id (0 = the calling thread).
    pub worker: usize,
    /// Chunks this worker claimed.
    pub chunks: usize,
    /// Candidates this worker produced.
    pub candidates: usize,
    /// Time spent processing chunks.
    pub busy: Duration,
    /// Level wall-clock minus busy time.
    pub idle: Duration,
}

/// Worker-pool activity for one parallel level.
#[derive(Clone, Debug)]
pub struct PoolLevelEvent {
    /// The level being *generated* (parents are at `level − 1`).
    pub level: usize,
    /// Number of stolen chunks.
    pub chunks: usize,
    /// Per-worker breakdown, main thread first.
    pub workers: Vec<WorkerLevelStats>,
}

/// The `e_m` computation of MPPm (Theorem 2).
#[derive(Clone, Debug)]
pub struct EmEvent {
    /// The window parameter `m`.
    pub m: usize,
    /// The computed statistic (clamped to ≥ 1 as used by λ′).
    pub em: u64,
    /// Wall-clock time of the computation.
    pub elapsed: Duration,
}

/// One depth-first subtree task of the hybrid engine
/// ([`crate::dfs`]): a connected component of the prefix-run graph
/// mined to exhaustion by a single worker.
#[derive(Clone, Debug)]
pub struct SubtreeEvent {
    /// Task index within the handoff batch.
    pub index: usize,
    /// Level of the parent generation the task started from.
    pub level: usize,
    /// Kept parent patterns handed to the task.
    pub patterns: usize,
    /// Deepest level the task generated (equals `level` when the
    /// component produced no candidates at all).
    pub deepest: usize,
    /// Candidates evaluated across the whole subtree.
    pub evaluated: usize,
    /// Frequent patterns the subtree contributed.
    pub frequent: usize,
    /// Peak arena bytes attributed to this task's double buffer.
    pub peak_arena_bytes: usize,
    /// Batched multi-suffix join kernel invocations.
    pub batches: u64,
    /// Candidates produced through the batched kernel.
    pub batch_candidates: u64,
    /// Wall-clock time of the task.
    pub elapsed: Duration,
}

/// The DFS engine spilled the cold subtree arenas to disk at the
/// BFS→DFS handoff because the live gauge crossed the spill watermark
/// (see [`crate::spill`]): one event per handoff batch.
#[derive(Clone, Debug)]
pub struct SpillEvent {
    /// Level of the parent generation whose components were spilled.
    pub level: usize,
    /// Spill records written (one per cold component).
    pub records: u64,
    /// Serialized bytes written across those records.
    pub bytes: u64,
    /// Live arena bytes at the moment the spill decision was taken.
    pub live_bytes: usize,
    /// The watermark in bytes (`max_arena_bytes × spill_watermark`)
    /// the live gauge crossed.
    pub watermark_bytes: usize,
    /// Wall-clock time spent encoding and writing the records.
    pub elapsed: Duration,
}

/// One spill record read back and decoded on the worker that popped
/// its subtree task. A completed spilling run emits exactly one
/// restore per spill record.
#[derive(Clone, Debug)]
pub struct RestoreEvent {
    /// The spill record id.
    pub record: u64,
    /// Serialized bytes read back.
    pub bytes: u64,
    /// Patterns in the restored component.
    pub patterns: usize,
    /// Wall-clock time spent reading and decoding the record.
    pub elapsed: Duration,
}

/// One corpus shard finished during a sharded corpus mine (see
/// [`crate::corpus::mine_corpus`]): either mined fresh on a pool
/// worker or restored from a checkpoint record on resume. Events are
/// emitted in shard-index order after the fan-out completes, so a
/// trace is deterministic regardless of worker scheduling.
#[derive(Clone, Debug)]
pub struct ShardEvent {
    /// Shard index (== sequence index in the corpus directory).
    pub shard: usize,
    /// Sequence length in symbols.
    pub len: usize,
    /// Patterns frequent within this shard alone.
    pub patterns: usize,
    /// True when the shard came back from a checkpoint record instead
    /// of being mined this run.
    pub restored: bool,
    /// Wall-clock time spent mining (or restoring) the shard.
    pub elapsed: Duration,
}

/// Per-list PIL representation choices made during a run (the
/// [`crate::adaptive::ReprCache`] histogram): how many suffix lists
/// were materialised as dense prefix-sum arrays, how many stayed
/// sparse, and how many dense candidates fell back to sparse because
/// their total count sum would overflow `u64`. Purely informational —
/// mined patterns and [`crate::MineStats`] are identical across modes.
#[derive(Clone, Debug)]
pub struct ReprEvent {
    /// The configured [`crate::adaptive::PilRepr`] mode, rendered.
    pub mode: String,
    /// Lists joined through the dense prefix-sum kernel.
    pub dense: u64,
    /// Lists joined through the sparse sliding-window kernel.
    pub sparse: u64,
    /// Dense candidates refused by the overflow guard.
    pub fallbacks: u64,
}

/// A mine cut short by an error after events were already emitted —
/// e.g. [`crate::MineError::MemoryCeiling`]. Terminal: no `summary`
/// follows.
#[derive(Clone, Debug)]
pub struct AbortEvent {
    /// Human-readable reason (the error's `Display`).
    pub message: String,
}

/// A non-fatal anomaly the run survived but the operator should know
/// about — e.g. a spill record that could not be removed after its
/// subtree was mined (`kind = "spill-cleanup"`). Warnings may appear
/// anywhere before the terminal `summary`/`abort` line.
#[derive(Clone, Debug)]
pub struct WarningEvent {
    /// Stable machine-readable category (`"spill-cleanup"`, ...).
    pub kind: String,
    /// Human-readable description.
    pub message: String,
}

/// One pattern-store query answered by `pgmine serve` — the daemon
/// shares this trace layer so query counters flow through the same
/// JSONL/metrics sinks as mining events.
#[derive(Clone, Debug)]
pub struct QueryEvent {
    /// Query kind (`"support"`, `"topk"`, `"prefix"`, `"overlap"`,
    /// `"stats"`).
    pub kind: String,
    /// False when the query was rejected (bad pattern, bad arguments).
    pub ok: bool,
    /// Result rows returned (0 for errors and scalar answers).
    pub results: usize,
    /// Wall-clock service time.
    pub latency: Duration,
    /// Whether the rendered response came out of the daemon's response
    /// cache (`Some(true)` hit, `Some(false)` miss, `None` for query
    /// kinds the cache never holds — e.g. `stats`, `shutdown`).
    pub cache: Option<bool>,
}

/// Mine completion: run-wide totals.
#[derive(Clone, Debug)]
pub struct CompleteEvent {
    /// Frequent patterns found.
    pub frequent: usize,
    /// Levels visited.
    pub levels: usize,
    /// Candidates summed over all levels.
    pub total_candidates: u128,
    /// The `n` the engine actually used.
    pub n_used: usize,
    /// True when any support counter saturated during the run.
    pub support_saturated: bool,
    /// Peak arena bytes observed across the run (0 when the engine
    /// predates the gauge).
    pub peak_arena_bytes: usize,
    /// The resolved join-kernel name (`"scalar"` / `"simd"`; empty
    /// when the engine predates kernel selection).
    pub kernel: String,
    /// The `k` of a top-k run; `None` on full and targeted mines. When
    /// set, `frequent` is the truncated top-k count, smaller than the
    /// per-level totals (`trace-check` relaxes its sum check on this).
    pub top_k: Option<usize>,
    /// Times the top-k support floor rose (0 outside top-k runs).
    pub floor_raises: u64,
    /// Patterns and join parents pruned by the support floor.
    pub pruned_by_floor: u64,
    /// Patterns, parents, and components pruned by the mining target.
    pub pruned_by_target: u64,
    /// Total wall-clock time.
    pub total_elapsed: Duration,
}

impl CompleteEvent {
    /// Build the completion event from a finished outcome.
    pub fn from_outcome(outcome: &MineOutcome) -> CompleteEvent {
        CompleteEvent {
            frequent: outcome.frequent.len(),
            levels: outcome.stats.levels.len(),
            total_candidates: outcome.stats.total_candidates(),
            n_used: outcome.stats.n_used,
            support_saturated: outcome.stats.support_saturated,
            peak_arena_bytes: 0,
            kernel: String::new(),
            top_k: outcome.stats.top_k,
            floor_raises: outcome.stats.floor_raises,
            pruned_by_floor: outcome.stats.pruned_by_floor,
            pruned_by_target: outcome.stats.pruned_by_target,
            total_elapsed: outcome.stats.total_elapsed,
        }
    }

    /// Attach the engine's peak arena gauge reading.
    pub fn with_peak_arena_bytes(mut self, peak: usize) -> CompleteEvent {
        self.peak_arena_bytes = peak;
        self
    }

    /// Attach the resolved join-kernel name the run executed with.
    pub fn with_kernel(mut self, kernel: crate::kernel::ResolvedKernel) -> CompleteEvent {
        self.kernel = kernel.name().to_string();
        self
    }
}

/// Receiver of mining events. All methods default to no-ops, so an
/// observer implements only what it cares about — and [`NoopObserver`]
/// monomorphizes to nothing at all.
pub trait MineObserver {
    /// The seed generation was built.
    fn on_seed(&mut self, _event: &SeedEvent) {}
    /// A level finished (filter + join).
    fn on_level(&mut self, _event: &LevelEvent) {}
    /// A parallel level's worker-pool breakdown.
    fn on_pool(&mut self, _event: &PoolLevelEvent) {}
    /// A depth-first subtree task completed (hybrid engine only).
    fn on_subtree(&mut self, _event: &SubtreeEvent) {}
    /// MPPm computed `e_m`.
    fn on_em(&mut self, _event: &EmEvent) {}
    /// The run's PIL representation histogram (emitted once, before
    /// the completion event).
    fn on_repr(&mut self, _event: &ReprEvent) {}
    /// Cold subtree arenas were spilled at the BFS→DFS handoff.
    fn on_spill(&mut self, _event: &SpillEvent) {}
    /// A spill record was restored and mined (hybrid engine only).
    fn on_restore(&mut self, _event: &RestoreEvent) {}
    /// A corpus shard finished — mined or checkpoint-restored
    /// (sharded corpus mine only).
    fn on_shard(&mut self, _event: &ShardEvent) {}
    /// A non-fatal anomaly was survived (e.g. spill cleanup failure).
    fn on_warning(&mut self, _event: &WarningEvent) {}
    /// A pattern-store query was served (`pgmine serve` only).
    fn on_query(&mut self, _event: &QueryEvent) {}
    /// The mine aborted after partial progress (terminal).
    fn on_abort(&mut self, _event: &AbortEvent) {}
    /// The mine finished.
    fn on_complete(&mut self, _event: &CompleteEvent) {}
}

/// The do-nothing observer: the default for every untraced mine.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl MineObserver for NoopObserver {}

impl<O: MineObserver + ?Sized> MineObserver for &mut O {
    fn on_seed(&mut self, event: &SeedEvent) {
        (**self).on_seed(event);
    }
    fn on_level(&mut self, event: &LevelEvent) {
        (**self).on_level(event);
    }
    fn on_pool(&mut self, event: &PoolLevelEvent) {
        (**self).on_pool(event);
    }
    fn on_subtree(&mut self, event: &SubtreeEvent) {
        (**self).on_subtree(event);
    }
    fn on_em(&mut self, event: &EmEvent) {
        (**self).on_em(event);
    }
    fn on_repr(&mut self, event: &ReprEvent) {
        (**self).on_repr(event);
    }
    fn on_spill(&mut self, event: &SpillEvent) {
        (**self).on_spill(event);
    }
    fn on_restore(&mut self, event: &RestoreEvent) {
        (**self).on_restore(event);
    }
    fn on_shard(&mut self, event: &ShardEvent) {
        (**self).on_shard(event);
    }
    fn on_warning(&mut self, event: &WarningEvent) {
        (**self).on_warning(event);
    }
    fn on_query(&mut self, event: &QueryEvent) {
        (**self).on_query(event);
    }
    fn on_abort(&mut self, event: &AbortEvent) {
        (**self).on_abort(event);
    }
    fn on_complete(&mut self, event: &CompleteEvent) {
        (**self).on_complete(event);
    }
}

impl<A: MineObserver, B: MineObserver> MineObserver for (A, B) {
    fn on_seed(&mut self, event: &SeedEvent) {
        self.0.on_seed(event);
        self.1.on_seed(event);
    }
    fn on_level(&mut self, event: &LevelEvent) {
        self.0.on_level(event);
        self.1.on_level(event);
    }
    fn on_pool(&mut self, event: &PoolLevelEvent) {
        self.0.on_pool(event);
        self.1.on_pool(event);
    }
    fn on_subtree(&mut self, event: &SubtreeEvent) {
        self.0.on_subtree(event);
        self.1.on_subtree(event);
    }
    fn on_em(&mut self, event: &EmEvent) {
        self.0.on_em(event);
        self.1.on_em(event);
    }
    fn on_repr(&mut self, event: &ReprEvent) {
        self.0.on_repr(event);
        self.1.on_repr(event);
    }
    fn on_spill(&mut self, event: &SpillEvent) {
        self.0.on_spill(event);
        self.1.on_spill(event);
    }
    fn on_restore(&mut self, event: &RestoreEvent) {
        self.0.on_restore(event);
        self.1.on_restore(event);
    }
    fn on_shard(&mut self, event: &ShardEvent) {
        self.0.on_shard(event);
        self.1.on_shard(event);
    }
    fn on_warning(&mut self, event: &WarningEvent) {
        self.0.on_warning(event);
        self.1.on_warning(event);
    }
    fn on_query(&mut self, event: &QueryEvent) {
        self.0.on_query(event);
        self.1.on_query(event);
    }
    fn on_abort(&mut self, event: &AbortEvent) {
        self.0.on_abort(event);
        self.1.on_abort(event);
    }
    fn on_complete(&mut self, event: &CompleteEvent) {
        self.0.on_complete(event);
        self.1.on_complete(event);
    }
}

impl<O: MineObserver> MineObserver for Option<O> {
    fn on_seed(&mut self, event: &SeedEvent) {
        if let Some(o) = self {
            o.on_seed(event);
        }
    }
    fn on_level(&mut self, event: &LevelEvent) {
        if let Some(o) = self {
            o.on_level(event);
        }
    }
    fn on_pool(&mut self, event: &PoolLevelEvent) {
        if let Some(o) = self {
            o.on_pool(event);
        }
    }
    fn on_subtree(&mut self, event: &SubtreeEvent) {
        if let Some(o) = self {
            o.on_subtree(event);
        }
    }
    fn on_em(&mut self, event: &EmEvent) {
        if let Some(o) = self {
            o.on_em(event);
        }
    }
    fn on_repr(&mut self, event: &ReprEvent) {
        if let Some(o) = self {
            o.on_repr(event);
        }
    }
    fn on_spill(&mut self, event: &SpillEvent) {
        if let Some(o) = self {
            o.on_spill(event);
        }
    }
    fn on_restore(&mut self, event: &RestoreEvent) {
        if let Some(o) = self {
            o.on_restore(event);
        }
    }
    fn on_shard(&mut self, event: &ShardEvent) {
        if let Some(o) = self {
            o.on_shard(event);
        }
    }
    fn on_warning(&mut self, event: &WarningEvent) {
        if let Some(o) = self {
            o.on_warning(event);
        }
    }
    fn on_query(&mut self, event: &QueryEvent) {
        if let Some(o) = self {
            o.on_query(event);
        }
    }
    fn on_abort(&mut self, event: &AbortEvent) {
        if let Some(o) = self {
            o.on_abort(event);
        }
    }
    fn on_complete(&mut self, event: &CompleteEvent) {
        if let Some(o) = self {
            o.on_complete(event);
        }
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Minimal JSON string escape for the few free-text fields (abort
/// messages carry panic payloads, which may contain anything). Public
/// so the serve protocol can emit the same escaping the sinks use.
pub fn escape_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Streams every event as one JSON line (the schema in the module
/// docs). Write errors are sticky: the first one stops further output
/// and surfaces from [`JsonlObserver::finish`].
pub struct JsonlObserver<W: io::Write> {
    out: W,
    error: Option<io::Error>,
}

impl<W: io::Write> JsonlObserver<W> {
    /// Wrap a writer.
    pub fn new(out: W) -> JsonlObserver<W> {
        JsonlObserver { out, error: None }
    }

    /// Flush and return the writer, or the first write error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }

    fn write_line(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = writeln!(self.out, "{line}") {
            self.error = Some(e);
        }
    }
}

impl<W: io::Write> MineObserver for JsonlObserver<W> {
    fn on_seed(&mut self, e: &SeedEvent) {
        self.write_line(&format!(
            "{{\"event\": \"seed\", \"level\": {}, \"patterns\": {}, \"pil_entries\": {}, \"arena_bytes\": {}, \"elapsed_ms\": {:.3}}}",
            e.level, e.patterns, e.pil_entries, e.arena_bytes, ms(e.elapsed)
        ));
    }

    fn on_level(&mut self, e: &LevelEvent) {
        self.write_line(&format!(
            "{{\"event\": \"level\", \"level\": {}, \"candidates\": {}, \"evaluated\": {}, \"frequent\": {}, \"kept\": {}, \"pruned_bound\": {}, \"pruned_support\": {}, \"arena_bytes\": {}, \"joins\": {}, \"probed\": {}, \"reallocs\": {}, \"bytes_moved\": {}, \"join_ms\": {:.3}, \"elapsed_ms\": {:.3}, \"saturated\": {}}}",
            e.level,
            e.candidates,
            e.evaluated,
            e.frequent,
            e.kept,
            e.pruned_bound,
            e.pruned_support,
            e.arena_bytes,
            e.joins,
            e.probed,
            e.reallocs,
            e.bytes_moved,
            ms(e.join_elapsed),
            ms(e.elapsed),
            e.saturated
        ));
    }

    fn on_pool(&mut self, e: &PoolLevelEvent) {
        let mut workers = String::from("[");
        for (i, w) in e.workers.iter().enumerate() {
            if i > 0 {
                workers.push_str(", ");
            }
            let _ = write!(
                workers,
                "{{\"worker\": {}, \"chunks\": {}, \"candidates\": {}, \"busy_ms\": {:.3}, \"idle_ms\": {:.3}}}",
                w.worker,
                w.chunks,
                w.candidates,
                ms(w.busy),
                ms(w.idle)
            );
        }
        workers.push(']');
        self.write_line(&format!(
            "{{\"event\": \"pool\", \"level\": {}, \"chunks\": {}, \"workers\": {workers}}}",
            e.level, e.chunks
        ));
    }

    fn on_subtree(&mut self, e: &SubtreeEvent) {
        self.write_line(&format!(
            "{{\"event\": \"subtree\", \"index\": {}, \"level\": {}, \"patterns\": {}, \"deepest\": {}, \"evaluated\": {}, \"frequent\": {}, \"peak_arena_bytes\": {}, \"batches\": {}, \"batch_candidates\": {}, \"elapsed_ms\": {:.3}}}",
            e.index,
            e.level,
            e.patterns,
            e.deepest,
            e.evaluated,
            e.frequent,
            e.peak_arena_bytes,
            e.batches,
            e.batch_candidates,
            ms(e.elapsed)
        ));
    }

    fn on_em(&mut self, e: &EmEvent) {
        self.write_line(&format!(
            "{{\"event\": \"em\", \"m\": {}, \"em\": {}, \"elapsed_ms\": {:.3}}}",
            e.m,
            e.em,
            ms(e.elapsed)
        ));
    }

    fn on_repr(&mut self, e: &ReprEvent) {
        self.write_line(&format!(
            "{{\"event\": \"repr\", \"mode\": \"{}\", \"dense\": {}, \"sparse\": {}, \"fallbacks\": {}}}",
            escape_json(&e.mode),
            e.dense,
            e.sparse,
            e.fallbacks
        ));
    }

    fn on_spill(&mut self, e: &SpillEvent) {
        self.write_line(&format!(
            "{{\"event\": \"spill\", \"level\": {}, \"records\": {}, \"bytes\": {}, \"live_bytes\": {}, \"watermark_bytes\": {}, \"elapsed_ms\": {:.3}}}",
            e.level,
            e.records,
            e.bytes,
            e.live_bytes,
            e.watermark_bytes,
            ms(e.elapsed)
        ));
    }

    fn on_restore(&mut self, e: &RestoreEvent) {
        self.write_line(&format!(
            "{{\"event\": \"restore\", \"record\": {}, \"bytes\": {}, \"patterns\": {}, \"elapsed_ms\": {:.3}}}",
            e.record,
            e.bytes,
            e.patterns,
            ms(e.elapsed)
        ));
    }

    fn on_warning(&mut self, e: &WarningEvent) {
        self.write_line(&format!(
            "{{\"event\": \"warning\", \"kind\": \"{}\", \"message\": \"{}\"}}",
            escape_json(&e.kind),
            escape_json(&e.message)
        ));
    }

    fn on_query(&mut self, e: &QueryEvent) {
        let cache = match e.cache {
            Some(hit) => format!(", \"cache_hit\": {hit}"),
            None => String::new(),
        };
        self.write_line(&format!(
            "{{\"event\": \"query\", \"kind\": \"{}\", \"ok\": {}, \"results\": {}, \"latency_ms\": {:.3}{}}}",
            escape_json(&e.kind),
            e.ok,
            e.results,
            ms(e.latency),
            cache
        ));
    }

    fn on_abort(&mut self, e: &AbortEvent) {
        self.write_line(&format!(
            "{{\"event\": \"abort\", \"message\": \"{}\"}}",
            escape_json(&e.message)
        ));
    }

    fn on_complete(&mut self, e: &CompleteEvent) {
        // Pruning fields appear only on runs that used them, keeping
        // full-mine traces byte-stable.
        let mut prune = String::new();
        if let Some(k) = e.top_k {
            let _ = write!(
                prune,
                ", \"top_k\": {}, \"floor_raises\": {}, \"pruned_by_floor\": {}",
                k, e.floor_raises, e.pruned_by_floor
            );
        }
        if e.pruned_by_target > 0 {
            let _ = write!(prune, ", \"pruned_by_target\": {}", e.pruned_by_target);
        }
        self.write_line(&format!(
            "{{\"event\": \"summary\", \"frequent\": {}, \"levels\": {}, \"total_candidates\": {}, \"n_used\": {}, \"support_saturated\": {}, \"peak_arena_bytes\": {}, \"kernel\": \"{}\"{}, \"total_ms\": {:.3}}}",
            e.frequent,
            e.levels,
            e.total_candidates,
            e.n_used,
            e.support_saturated,
            e.peak_arena_bytes,
            escape_json(&e.kernel),
            prune,
            ms(e.total_elapsed)
        ));
    }
}

/// Aggregates every event in memory — the `--metrics` sink and the
/// bench harness's source for the pruning-power series.
#[derive(Debug, Default)]
pub struct MetricsObserver {
    /// The seed event, if one fired.
    pub seed: Option<SeedEvent>,
    /// Level events in arrival (= level) order.
    pub levels: Vec<LevelEvent>,
    /// Pool events in arrival order.
    pub pool: Vec<PoolLevelEvent>,
    /// Subtree events in arrival (= handoff task) order.
    pub subtrees: Vec<SubtreeEvent>,
    /// The `e_m` event, if the mine was MPPm.
    pub em: Option<EmEvent>,
    /// The PIL representation histogram, if the engine emitted one.
    pub repr: Option<ReprEvent>,
    /// Spill events in arrival order (at most one per handoff).
    pub spills: Vec<SpillEvent>,
    /// Restore events in record order.
    pub restores: Vec<RestoreEvent>,
    /// Warnings in arrival order.
    pub warnings: Vec<WarningEvent>,
    /// Per-kind query aggregates, sorted by kind (serve runs only).
    pub queries: std::collections::BTreeMap<String, QueryStats>,
    /// The abort event, if the mine was cut short.
    pub abort: Option<AbortEvent>,
    /// The completion event.
    pub complete: Option<CompleteEvent>,
}

/// Aggregated service counters for one query kind (the
/// [`MetricsObserver`] rollup of [`QueryEvent`]s).
#[derive(Clone, Debug, Default)]
pub struct QueryStats {
    /// Queries served.
    pub count: u64,
    /// Queries rejected (`ok = false`).
    pub errors: u64,
    /// Result rows summed over the kind.
    pub results: u64,
    /// Service time summed over the kind.
    pub total_latency: Duration,
    /// Worst single-query service time.
    pub max_latency: Duration,
    /// Responses served from the daemon's response cache.
    pub cache_hits: u64,
    /// Responses rendered fresh for a cacheable query kind.
    pub cache_misses: u64,
}

impl MetricsObserver {
    /// An empty aggregator.
    pub fn new() -> MetricsObserver {
        MetricsObserver::default()
    }

    /// Candidates summed over observed levels.
    pub fn total_candidates(&self) -> u128 {
        self.levels.iter().map(|l| l.candidates).sum()
    }

    /// Render the human-readable summary printed by `pgmine mine
    /// --metrics`.
    pub fn render(&self) -> String {
        let mut out = String::from("mining metrics\n");
        if let Some(s) = &self.seed {
            let _ = writeln!(
                out,
                "  seed: level {} | {} patterns | {} PIL entries | {} arena bytes | {:.3} ms",
                s.level,
                s.patterns,
                s.pil_entries,
                s.arena_bytes,
                ms(s.elapsed)
            );
        }
        if let Some(e) = &self.em {
            let _ = writeln!(
                out,
                "  e_m: m = {} -> e_m = {} in {:.3} ms",
                e.m,
                e.em,
                ms(e.elapsed)
            );
        }
        out.push_str(
            "  level | candidates | evaluated | frequent | kept | pruned_bound | pruned_support | joins | probed | reallocs | moved_bytes | join_ms | total_ms\n",
        );
        for l in &self.levels {
            let _ = writeln!(
                out,
                "  {:>5} | {:>10} | {:>9} | {:>8} | {:>4} | {:>12} | {:>14} | {:>5} | {:>6} | {:>8} | {:>11} | {:>7.3} | {:>8.3}{}",
                l.level,
                l.candidates,
                l.evaluated,
                l.frequent,
                l.kept,
                l.pruned_bound,
                l.pruned_support,
                l.joins,
                l.probed,
                l.reallocs,
                l.bytes_moved,
                ms(l.join_elapsed),
                ms(l.elapsed),
                if l.saturated { "  [saturated]" } else { "" }
            );
        }
        for p in &self.pool {
            let _ = writeln!(out, "  pool @ level {}: {} chunks", p.level, p.chunks);
            for w in &p.workers {
                let _ = writeln!(
                    out,
                    "    worker {:>2}: {:>4} chunks | {:>8} candidates | busy {:>8.3} ms | idle {:>8.3} ms",
                    w.worker,
                    w.chunks,
                    w.candidates,
                    ms(w.busy),
                    ms(w.idle)
                );
            }
        }
        for s in &self.subtrees {
            let _ = writeln!(
                out,
                "  subtree {:>3} @ level {}: {} parents -> depth {} | {} evaluated | {} frequent | peak {} bytes | {} kernel batches | {:.3} ms",
                s.index,
                s.level,
                s.patterns,
                s.deepest,
                s.evaluated,
                s.frequent,
                s.peak_arena_bytes,
                s.batches,
                ms(s.elapsed)
            );
        }
        if let Some(r) = &self.repr {
            let _ = writeln!(
                out,
                "  pil repr ({}): {} dense | {} sparse | {} fallbacks",
                r.mode, r.dense, r.sparse, r.fallbacks
            );
        }
        for s in &self.spills {
            let _ = writeln!(
                out,
                "  spill @ level {}: {} records | {} bytes | live {} over watermark {} | {:.3} ms",
                s.level,
                s.records,
                s.bytes,
                s.live_bytes,
                s.watermark_bytes,
                ms(s.elapsed)
            );
        }
        for r in &self.restores {
            let _ = writeln!(
                out,
                "  restore record {}: {} bytes | {} patterns | {:.3} ms",
                r.record,
                r.bytes,
                r.patterns,
                ms(r.elapsed)
            );
        }
        for w in &self.warnings {
            let _ = writeln!(out, "  warning [{}]: {}", w.kind, w.message);
        }
        for (kind, q) in &self.queries {
            let mean = if q.count > 0 {
                ms(q.total_latency) / q.count as f64
            } else {
                0.0
            };
            let cache = if q.cache_hits + q.cache_misses > 0 {
                format!(" | cache {} hit / {} miss", q.cache_hits, q.cache_misses)
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "  query {kind}: {} served | {} errors | {} rows | mean {:.3} ms | max {:.3} ms{}",
                q.count,
                q.errors,
                q.results,
                mean,
                ms(q.max_latency),
                cache
            );
        }
        if let Some(a) = &self.abort {
            let _ = writeln!(out, "  ABORTED: {}", a.message);
        }
        if let Some(c) = &self.complete {
            let kernel = if c.kernel.is_empty() {
                String::new()
            } else {
                format!(" | {} kernel", c.kernel)
            };
            let _ = writeln!(
                out,
                "  total: {} frequent over {} levels | {} candidates | n = {} | peak {} arena bytes{} | {:.3} ms{}",
                c.frequent,
                c.levels,
                c.total_candidates,
                c.n_used,
                c.peak_arena_bytes,
                kernel,
                ms(c.total_elapsed),
                if c.support_saturated {
                    " | SUPPORT SATURATED"
                } else {
                    ""
                }
            );
            if c.top_k.is_some() || c.pruned_by_target > 0 {
                let k = c
                    .top_k
                    .map(|k| k.to_string())
                    .unwrap_or_else(|| "-".to_string());
                let _ = writeln!(
                    out,
                    "  pruning: top_k {} | floor_raises {} | pruned_by_floor {} | pruned_by_target {}",
                    k, c.floor_raises, c.pruned_by_floor, c.pruned_by_target
                );
            }
        }
        out
    }
}

impl MineObserver for MetricsObserver {
    fn on_seed(&mut self, event: &SeedEvent) {
        self.seed = Some(event.clone());
    }
    fn on_level(&mut self, event: &LevelEvent) {
        self.levels.push(event.clone());
    }
    fn on_pool(&mut self, event: &PoolLevelEvent) {
        self.pool.push(event.clone());
    }
    fn on_subtree(&mut self, event: &SubtreeEvent) {
        self.subtrees.push(event.clone());
    }
    fn on_em(&mut self, event: &EmEvent) {
        self.em = Some(event.clone());
    }
    fn on_repr(&mut self, event: &ReprEvent) {
        self.repr = Some(event.clone());
    }
    fn on_spill(&mut self, event: &SpillEvent) {
        self.spills.push(event.clone());
    }
    fn on_restore(&mut self, event: &RestoreEvent) {
        self.restores.push(event.clone());
    }
    fn on_warning(&mut self, event: &WarningEvent) {
        self.warnings.push(event.clone());
    }
    fn on_query(&mut self, event: &QueryEvent) {
        let q = self.queries.entry(event.kind.clone()).or_default();
        q.count += 1;
        if !event.ok {
            q.errors += 1;
        }
        q.results += event.results as u64;
        q.total_latency += event.latency;
        q.max_latency = q.max_latency.max(event.latency);
        match event.cache {
            Some(true) => q.cache_hits += 1,
            Some(false) => q.cache_misses += 1,
            None => {}
        }
    }
    fn on_abort(&mut self, event: &AbortEvent) {
        self.abort = Some(event.clone());
    }
    fn on_complete(&mut self, event: &CompleteEvent) {
        self.complete = Some(event.clone());
    }
}

// ---------------------------------------------------------------------
// JSONL validation (pgmine trace-check, CI smoke, integration tests).
// The workspace carries no serde, so this is a minimal hand-rolled JSON
// reader covering exactly what the sinks emit.
// ---------------------------------------------------------------------

/// A parsed JSON value (just enough for the trace schema).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer without fraction or exponent (kept exact — candidate
    /// counts exceed `f64` precision).
    Int(u128),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one JSON document (must consume the whole input).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    /// Look up an object field.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer.
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u128().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as a float (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at offset {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at offset {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at offset {}", *pos))?;
                        // The sinks only emit BMP scalars (control chars);
                        // surrogate halves are rejected.
                        let ch = char::from_u32(hex)
                            .ok_or_else(|| format!("non-scalar \\u escape at offset {}", *pos))?;
                        out.push(ch);
                        *pos += 4;
                    }
                    other => return Err(format!("unsupported escape {other:?}")),
                }
                *pos += 1;
            }
            _ => {
                // Advance one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().ok_or("empty string tail")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut fractional = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                fractional = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("bad number at offset {start}"));
    }
    if !fractional && !text.starts_with('-') {
        if let Ok(v) = text.parse::<u128>() {
            return Ok(Json::Int(v));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {text:?}"))
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(format!("expected ',' or ']' at offset {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut out = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        out.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {}", *pos)),
        }
    }
}

/// What [`validate_trace`] found in a well-formed trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceReport {
    /// Non-empty lines in the file.
    pub lines: usize,
    /// Level events.
    pub level_events: usize,
    /// The summary line's frequent-pattern total.
    pub frequent: usize,
    /// The summary line's candidate total.
    pub total_candidates: u128,
    /// True when the trace ends in an `abort` line instead of a
    /// `summary` (the mine was cut short; totals are partial).
    pub aborted: bool,
}

/// Validate a JSONL trace against the schema: every line parses as an
/// object with an `"event"` field; `level` events are strictly
/// increasing in level; exactly one `summary` line exists, comes last,
/// and its totals match the level events. A trace may instead end in
/// one `abort` line (and then carries no `summary`).
pub fn validate_trace(text: &str) -> Result<TraceReport, String> {
    let mut report = TraceReport::default();
    let mut last_level: Option<usize> = None;
    let mut level_frequent = 0usize;
    let mut level_candidates = 0u128;
    let mut summary: Option<(usize, Json)> = None;
    let mut aborted = false;

    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        report.lines += 1;
        let value = Json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let event = value
            .get("event")
            .and_then(Json::as_str)
            .ok_or(format!("line {lineno}: missing \"event\" field"))?
            .to_string();
        if summary.is_some() {
            return Err(format!("line {lineno}: events after the summary line"));
        }
        if aborted {
            return Err(format!("line {lineno}: events after the abort line"));
        }
        match event.as_str() {
            "level" => {
                let level = value
                    .get("level")
                    .and_then(Json::as_usize)
                    .ok_or(format!("line {lineno}: level event without level"))?;
                if let Some(prev) = last_level {
                    if level <= prev {
                        return Err(format!(
                            "line {lineno}: level {level} not above previous {prev}"
                        ));
                    }
                }
                last_level = Some(level);
                report.level_events += 1;
                level_frequent += value
                    .get("frequent")
                    .and_then(Json::as_usize)
                    .ok_or(format!("line {lineno}: level event without frequent"))?;
                level_candidates += value
                    .get("candidates")
                    .and_then(Json::as_u128)
                    .ok_or(format!("line {lineno}: level event without candidates"))?;
            }
            "summary" => summary = Some((lineno, value)),
            "abort" => {
                value
                    .get("message")
                    .and_then(Json::as_str)
                    .ok_or(format!("line {lineno}: abort event without message"))?;
                aborted = true;
            }
            "warning" => {
                value
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or(format!("line {lineno}: warning event without kind"))?;
                value
                    .get("message")
                    .and_then(Json::as_str)
                    .ok_or(format!("line {lineno}: warning event without message"))?;
            }
            "seed" | "pool" | "subtree" | "em" | "repr" | "spill" | "restore" | "query" => {}
            other => return Err(format!("line {lineno}: unknown event {other:?}")),
        }
    }

    if aborted {
        // A cut-short mine: no summary, partial totals from the level
        // events that did make it out.
        report.frequent = level_frequent;
        report.total_candidates = level_candidates;
        report.aborted = true;
        return Ok(report);
    }
    let (lineno, summary) = summary.ok_or("trace has no summary line")?;
    let frequent = summary
        .get("frequent")
        .and_then(Json::as_usize)
        .ok_or(format!("line {lineno}: summary without frequent"))?;
    let total_candidates = summary
        .get("total_candidates")
        .and_then(Json::as_u128)
        .ok_or(format!("line {lineno}: summary without total_candidates"))?;
    let levels = summary
        .get("levels")
        .and_then(Json::as_usize)
        .ok_or(format!("line {lineno}: summary without levels"))?;
    // Under a top-k floor the summary reports the truncated result set,
    // while level events count every pattern that was frequent when its
    // level ran — so the sum is only an upper bound there.
    let top_k_run = summary.get("top_k").is_some();
    if top_k_run {
        if frequent > level_frequent {
            return Err(format!(
                "summary frequent {frequent} > {level_frequent} summed over level events in a top-k run"
            ));
        }
    } else if frequent != level_frequent {
        return Err(format!(
            "summary frequent {frequent} != {level_frequent} summed over level events"
        ));
    }
    if total_candidates != level_candidates {
        return Err(format!(
            "summary total_candidates {total_candidates} != {level_candidates} summed over level events"
        ));
    }
    if levels != report.level_events {
        return Err(format!(
            "summary levels {levels} != {} level events",
            report.level_events
        ));
    }
    report.frequent = frequent;
    report.total_candidates = total_candidates;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level_event(level: usize) -> LevelEvent {
        LevelEvent {
            level,
            candidates: 64,
            evaluated: 60,
            frequent: 10,
            kept: 20,
            pruned_bound: 40,
            pruned_support: 50,
            arena_bytes: 4096,
            joins: 60,
            probed: 1200,
            reallocs: 3,
            bytes_moved: 768,
            join_elapsed: Duration::from_micros(500),
            elapsed: Duration::from_millis(1),
            saturated: false,
        }
    }

    fn complete_event(levels: usize) -> CompleteEvent {
        CompleteEvent {
            frequent: 10 * levels,
            levels,
            total_candidates: 64 * levels as u128,
            n_used: 8,
            support_saturated: false,
            peak_arena_bytes: 8192,
            kernel: "scalar".into(),
            top_k: None,
            floor_raises: 0,
            pruned_by_floor: 0,
            pruned_by_target: 0,
            total_elapsed: Duration::from_millis(3),
        }
    }

    fn subtree_event(index: usize) -> SubtreeEvent {
        SubtreeEvent {
            index,
            level: 4,
            patterns: 7,
            deepest: 9,
            evaluated: 120,
            frequent: 5,
            peak_arena_bytes: 2048,
            batches: 11,
            batch_candidates: 120,
            elapsed: Duration::from_millis(2),
        }
    }

    #[test]
    fn jsonl_round_trips_through_validator() {
        let mut sink = JsonlObserver::new(Vec::new());
        sink.on_seed(&SeedEvent {
            level: 3,
            patterns: 64,
            pil_entries: 1000,
            arena_bytes: 16_192,
            elapsed: Duration::from_millis(2),
        });
        sink.on_level(&level_event(3));
        sink.on_pool(&PoolLevelEvent {
            level: 4,
            chunks: 8,
            workers: vec![WorkerLevelStats {
                worker: 0,
                chunks: 8,
                candidates: 100,
                busy: Duration::from_millis(1),
                idle: Duration::ZERO,
            }],
        });
        sink.on_level(&level_event(4));
        sink.on_subtree(&subtree_event(0));
        sink.on_em(&EmEvent {
            m: 8,
            em: 12,
            elapsed: Duration::from_millis(1),
        });
        sink.on_repr(&ReprEvent {
            mode: "auto".into(),
            dense: 30,
            sparse: 12,
            fallbacks: 1,
        });
        sink.on_spill(&SpillEvent {
            level: 4,
            records: 3,
            bytes: 900,
            live_bytes: 5000,
            watermark_bytes: 4096,
            elapsed: Duration::from_millis(1),
        });
        sink.on_restore(&RestoreEvent {
            record: 2,
            bytes: 300,
            patterns: 7,
            elapsed: Duration::from_micros(200),
        });
        sink.on_complete(&complete_event(2));
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        assert!(text.contains("\"arena_bytes\": 4096"), "{text}");
        assert!(text.contains("\"peak_arena_bytes\": 8192"), "{text}");
        assert!(
            text.contains("\"joins\": 60, \"probed\": 1200, \"reallocs\": 3, \"bytes_moved\": 768"),
            "{text}"
        );
        assert!(text.contains("\"kernel\": \"scalar\""), "{text}");
        assert!(
            text.contains("\"event\": \"repr\", \"mode\": \"auto\", \"dense\": 30"),
            "{text}"
        );
        assert!(
            text.contains("\"event\": \"spill\", \"level\": 4, \"records\": 3"),
            "{text}"
        );
        assert!(
            text.contains("\"event\": \"restore\", \"record\": 2, \"bytes\": 300"),
            "{text}"
        );
        let report = validate_trace(&text).unwrap();
        assert_eq!(report.level_events, 2);
        assert_eq!(report.frequent, 20);
        assert_eq!(report.total_candidates, 128);
        assert_eq!(report.lines, 10);
        assert!(!report.aborted);
    }

    #[test]
    fn aborted_trace_validates_without_summary() {
        let mut sink = JsonlObserver::new(Vec::new());
        sink.on_level(&level_event(3));
        sink.on_abort(&AbortEvent {
            message: "arena memory ceiling of 10 bytes exceeded: \"boom\"\n".into(),
        });
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        let report = validate_trace(&text).unwrap();
        assert!(report.aborted);
        assert_eq!(report.level_events, 1);
        assert_eq!(report.frequent, 10);

        // Nothing may follow the abort line.
        let mut sink = JsonlObserver::new(Vec::new());
        sink.on_abort(&AbortEvent {
            message: "x".into(),
        });
        sink.on_level(&level_event(3));
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        let err = validate_trace(&text).unwrap_err();
        assert!(err.contains("after the abort"), "{err}");
    }

    #[test]
    fn warning_and_query_events_flow_through_sinks_and_validator() {
        let mut sink = JsonlObserver::new(Vec::new());
        sink.on_level(&level_event(3));
        sink.on_warning(&WarningEvent {
            kind: "spill-cleanup".into(),
            message: "failed to remove \"spill-00000001.pgsp\"".into(),
        });
        sink.on_query(&QueryEvent {
            kind: "topk".into(),
            ok: true,
            results: 5,
            latency: Duration::from_micros(420),
            cache: None,
        });
        sink.on_complete(&complete_event(1));
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        assert!(
            text.contains("\"event\": \"warning\", \"kind\": \"spill-cleanup\""),
            "{text}"
        );
        assert!(
            text.contains("\"event\": \"query\", \"kind\": \"topk\", \"ok\": true, \"results\": 5"),
            "{text}"
        );
        let report = validate_trace(&text).unwrap();
        assert_eq!(report.lines, 4);

        // A warning without its fields is rejected.
        assert!(validate_trace("{\"event\": \"warning\"}\n").is_err());

        let mut m = MetricsObserver::new();
        m.on_warning(&WarningEvent {
            kind: "spill-cleanup".into(),
            message: "orphan".into(),
        });
        for ok in [true, true, false] {
            m.on_query(&QueryEvent {
                kind: "support".into(),
                ok,
                results: usize::from(ok),
                latency: Duration::from_micros(100),
                cache: Some(ok),
            });
        }
        let stats = &m.queries["support"];
        assert_eq!((stats.count, stats.errors, stats.results), (3, 1, 2));
        let rendered = m.render();
        assert!(
            rendered.contains("warning [spill-cleanup]: orphan"),
            "{rendered}"
        );
        assert!(
            rendered.contains("query support: 3 served | 1 errors"),
            "{rendered}"
        );
    }

    #[test]
    fn validator_rejects_non_monotone_levels() {
        let mut sink = JsonlObserver::new(Vec::new());
        sink.on_level(&level_event(4));
        sink.on_level(&level_event(3));
        sink.on_complete(&complete_event(2));
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        let err = validate_trace(&text).unwrap_err();
        assert!(err.contains("not above"), "{err}");
    }

    #[test]
    fn validator_rejects_mismatched_totals() {
        let mut sink = JsonlObserver::new(Vec::new());
        sink.on_level(&level_event(3));
        let mut complete = complete_event(1);
        complete.frequent = 999;
        sink.on_complete(&complete);
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        let err = validate_trace(&text).unwrap_err();
        assert!(err.contains("frequent"), "{err}");
    }

    #[test]
    fn validator_requires_summary_last() {
        let mut sink = JsonlObserver::new(Vec::new());
        sink.on_complete(&complete_event(0));
        sink.on_level(&level_event(3));
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        assert!(validate_trace(&text).is_err());
        assert!(validate_trace("").is_err(), "no summary at all");
        assert!(validate_trace("not json\n").is_err());
        assert!(validate_trace("{\"no_event\": 1}\n").is_err());
    }

    #[test]
    fn json_parser_handles_trace_shapes() {
        let v = Json::parse(
            "{\"a\": 1, \"b\": -2.5, \"c\": true, \"d\": \"x\", \"e\": [1, 2], \"f\": {}, \"g\": null}",
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_u128(), Some(1));
        assert_eq!(v.get("b").unwrap().as_f64(), Some(-2.5));
        assert_eq!(v.get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("d").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("e").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("f"), Some(&Json::Obj(vec![])));
        assert_eq!(v.get("g"), Some(&Json::Null));
        // Exact huge integers survive (beyond f64 precision).
        let big = Json::parse("{\"n\": 340282366920938463463374607431768211455}").unwrap();
        assert_eq!(big.get("n").unwrap().as_u128(), Some(u128::MAX));
        // Malformed inputs fail loudly.
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2] trailing").is_err());
    }

    #[test]
    fn composed_observers_fan_out() {
        let mut pair = (MetricsObserver::new(), Some(MetricsObserver::new()));
        pair.on_level(&level_event(3));
        pair.on_complete(&complete_event(1));
        assert_eq!(pair.0.levels.len(), 1);
        assert_eq!(pair.1.as_ref().unwrap().levels.len(), 1);
        assert!(pair.0.complete.is_some());
        let mut none: Option<MetricsObserver> = None;
        none.on_level(&level_event(3)); // no-op, must not panic
        let mut by_ref = MetricsObserver::new();
        {
            let r = &mut by_ref;
            fn takes_observer<O: MineObserver>(o: &mut O, e: &LevelEvent) {
                o.on_level(e);
            }
            takes_observer(&mut &mut *r, &level_event(3));
        }
        assert_eq!(by_ref.levels.len(), 1);
    }

    #[test]
    fn metrics_render_mentions_key_numbers() {
        let mut m = MetricsObserver::new();
        m.on_em(&EmEvent {
            m: 8,
            em: 42,
            elapsed: Duration::from_millis(1),
        });
        m.on_level(&level_event(3));
        m.on_repr(&ReprEvent {
            mode: "auto".into(),
            dense: 5,
            sparse: 3,
            fallbacks: 0,
        });
        m.on_spill(&SpillEvent {
            level: 3,
            records: 2,
            bytes: 640,
            live_bytes: 900,
            watermark_bytes: 512,
            elapsed: Duration::from_millis(1),
        });
        m.on_restore(&RestoreEvent {
            record: 0,
            bytes: 320,
            patterns: 4,
            elapsed: Duration::from_micros(100),
        });
        m.on_complete(&complete_event(1));
        let text = m.render();
        assert!(text.contains("e_m = 42"), "{text}");
        assert!(text.contains("10 frequent"), "{text}");
        assert!(
            text.contains("pil repr (auto): 5 dense | 3 sparse"),
            "{text}"
        );
        assert!(
            text.contains("spill @ level 3: 2 records | 640 bytes"),
            "{text}"
        );
        assert!(
            text.contains("restore record 0: 320 bytes | 4 patterns"),
            "{text}"
        );
        assert_eq!(m.total_candidates(), 64);
    }
}
