//! The sequence statistic `e_m` of Theorem 2.
//!
//! For each start offset `r`, consider every length-(m+1) offset
//! sequence `[r, r+g1, …, r+g1+…+gm]` (each `g_j ∈ [N+1, M+1]`) and ask:
//! which character string occurs most often, and how many times? That
//! count is `K_r`; the statistic is `e_m = max_r K_r`. It replaces the
//! loose `W^m` perturbation bound in Theorem 1, tightening the pruning
//! factor to `λ′` and letting MPPm estimate the longest frequent
//! pattern length automatically.
//!
//! Enumerating all `W^m` offset sequences per start (the paper's
//! formulation) is exponential; instead we do a *determinized* DFS over
//! character strings: the state is the set of subject positions (with
//! multiplicities) reachable while spelling the current string, and
//! branches are pruned when their best possible leaf count
//! (`total multiplicity · W^(levels left)`) cannot beat the best found
//! so far. On random genomic sequences this prunes almost everything.

use crate::gap::GapRequirement;
use perigap_seq::Sequence;

/// Exact `e_m = max_r K_r`. Returns 0 when no length-(m+1) offset
/// sequence fits in the sequence (in that case Theorem 2 is vacuous;
/// callers clamp to ≥ 1, which is always sound because a larger `e_m`
/// only loosens λ′).
///
/// # Panics
/// Panics if `m == 0`.
pub fn compute_em(seq: &Sequence, gap: GapRequirement, m: usize) -> u64 {
    assert!(m >= 1, "e_m requires m ≥ 1");
    let mut best = 0u64;
    for r in 1..=seq.len() {
        let k = kr_bounded(seq, gap, m, r, best);
        best = best.max(k);
    }
    best
}

/// Exact `K_r` for a single start offset (no cross-start pruning), as
/// used in the paper's Table 2 walk-through.
///
/// # Panics
/// Panics if `m == 0` or `r` is not a valid 1-based offset.
pub fn kr(seq: &Sequence, gap: GapRequirement, m: usize, r: usize) -> u64 {
    assert!(m >= 1, "K_r requires m ≥ 1");
    assert!(r >= 1 && r <= seq.len(), "start offset {r} out of range");
    kr_bounded(seq, gap, m, r, 0)
}

/// Every `K_r` for `r = 1..=L` plus `e_m` — the full Table 2 row.
pub fn kr_table(seq: &Sequence, gap: GapRequirement, m: usize) -> (Vec<u64>, u64) {
    let krs: Vec<u64> = (1..=seq.len()).map(|r| kr(seq, gap, m, r)).collect();
    let em = krs.iter().copied().max().unwrap_or(0);
    (krs, em)
}

/// `K_r` computed by DFS, pruning any branch that cannot exceed
/// `floor`. Returns the exact `K_r` when it exceeds `floor`; otherwise
/// returns `floor` unchanged (branches that cannot beat it were
/// pruned, so the true local value is unknown). Every caller folds the
/// result with `max`, for which this contract is sufficient — pass
/// `floor == 0` for the exact per-offset value.
fn kr_bounded(seq: &Sequence, gap: GapRequirement, m: usize, r: usize, floor: u64) -> u64 {
    let mut best = floor;
    // State: positions reachable for the current string, with the
    // number of offset sequences reaching each. Kept sorted by position.
    let state = vec![(r as u32, 1u64)];
    descend(seq, gap, m, &state, &mut best);
    best
}

fn descend(
    seq: &Sequence,
    gap: GapRequirement,
    levels_left: usize,
    state: &[(u32, u64)],
    best: &mut u64,
) {
    let sigma = seq.alphabet().size();
    // Successor buckets per character, merged by position.
    let mut buckets: Vec<Vec<(u32, u64)>> = vec![Vec::new(); sigma];
    for &(pos, mult) in state {
        for step in gap.steps() {
            let next = pos as usize + step;
            if next > seq.len() {
                break;
            }
            let ch = seq.at1(next) as usize;
            push_merged(&mut buckets[ch], next as u32, mult);
        }
    }
    let w = gap.flexibility() as u64;
    for bucket in buckets {
        if bucket.is_empty() {
            continue;
        }
        let total: u64 = bucket.iter().map(|&(_, m)| m).sum();
        if levels_left == 1 {
            *best = (*best).max(total);
            continue;
        }
        // Upper bound: every remaining level can multiply the count by
        // at most W.
        let ub = total.saturating_mul(w.saturating_pow((levels_left - 1) as u32));
        if ub <= *best {
            continue;
        }
        descend(seq, gap, levels_left - 1, &bucket, best);
    }
}

/// Insert (pos, mult) into a position-sorted list, merging equal
/// positions. Successive inserts are nearly sorted, so the backward
/// scan is short in practice.
fn push_merged(list: &mut Vec<(u32, u64)>, pos: u32, mult: u64) {
    match list.binary_search_by_key(&pos, |&(p, _)| p) {
        Ok(i) => list[i].1 += mult,
        Err(i) => list.insert(i, (pos, mult)),
    }
}

/// A sampled lower-bound estimate of `e_m` from `sample` evenly spaced
/// start offsets. **Diagnostic only**: a lower bound of the true max
/// would make λ′ unsound if used for pruning, so the miner never calls
/// this; it exists to quantify how much of the exact computation's cost
/// the sampling would save (see the ablation bench).
pub fn estimate_em(seq: &Sequence, gap: GapRequirement, m: usize, sample: usize) -> u64 {
    assert!(m >= 1, "e_m requires m ≥ 1");
    if seq.is_empty() || sample == 0 {
        return 0;
    }
    let stride = (seq.len() / sample.min(seq.len())).max(1);
    let mut best = 0u64;
    let mut r = 1;
    while r <= seq.len() {
        best = best.max(kr_bounded(seq, gap, m, r, best));
        r += stride;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use perigap_seq::Alphabet;

    fn gap(n: usize, m: usize) -> GapRequirement {
        GapRequirement::new(n, m).unwrap()
    }

    #[test]
    fn paper_table2_example() {
        // Section 4.2: S = ACGTCCGT, gap [1,2], m = 2 →
        // K = [2, 1, 2, 1, 0, 0, 0, 0], e_m = 2.
        let s = Sequence::dna("ACGTCCGT").unwrap();
        let (krs, em) = kr_table(&s, gap(1, 2), 2);
        assert_eq!(krs, vec![2, 1, 2, 1, 0, 0, 0, 0]);
        assert_eq!(em, 2);
        assert_eq!(compute_em(&s, gap(1, 2), 2), 2);
    }

    #[test]
    fn k1_details_from_paper() {
        // K_1: offset sequences [1,3,5], [1,3,6], [1,4,6], [1,4,7] give
        // AGC, AGC, ATC, ATG → most frequent AGC with count 2.
        let s = Sequence::dna("ACGTCCGT").unwrap();
        assert_eq!(kr(&s, gap(1, 2), 2, 1), 2);
        // K_2: CTC, CTG, CCG, CCT all distinct → 1.
        assert_eq!(kr(&s, gap(1, 2), 2, 2), 1);
    }

    #[test]
    fn em_bounded_by_wm() {
        use perigap_seq::gen::iid::uniform;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let s = uniform(&mut StdRng::seed_from_u64(5), Alphabet::Dna, 400);
        for (n, m_gap, m) in [(1, 3, 2), (2, 4, 3), (9, 12, 2)] {
            let g = gap(n, m_gap);
            let w = g.flexibility() as u64;
            let em = compute_em(&s, g, m);
            assert!(em >= 1, "a 400-char sequence admits some window");
            assert!(em <= w.pow(m as u32), "e_m must not exceed W^m");
        }
    }

    #[test]
    fn homogeneous_sequence_saturates_wm() {
        // All-A sequence: every offset sequence spells AAAA…, so
        // K_r = W^m wherever a full window fits.
        let s = Sequence::dna(&"A".repeat(50)).unwrap();
        let g = gap(1, 2);
        assert_eq!(compute_em(&s, g, 3), 8); // W = 2, m = 3
    }

    #[test]
    fn too_short_sequence_gives_zero() {
        let s = Sequence::dna("ACG").unwrap();
        // m = 2 needs span ≥ 1 + 2·2 = 5 > 3.
        assert_eq!(compute_em(&s, gap(1, 1), 2), 0);
    }

    #[test]
    fn exhaustive_reference_check() {
        // Brute-force every offset sequence and every start on a random
        // sequence; compare with the DFS.
        use perigap_seq::gen::iid::uniform;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use std::collections::HashMap;
        let s = uniform(&mut StdRng::seed_from_u64(6), Alphabet::Dna, 80);
        let g = gap(1, 3);
        let m = 3;
        let mut expected_em = 0u64;
        for r in 1..=s.len() {
            let mut counts: HashMap<Vec<u8>, u64> = HashMap::new();
            // Enumerate all W^m chains.
            fn walk(
                s: &Sequence,
                g: GapRequirement,
                pos: usize,
                left: usize,
                chars: &mut Vec<u8>,
                counts: &mut HashMap<Vec<u8>, u64>,
            ) {
                if left == 0 {
                    *counts.entry(chars.clone()).or_insert(0) += 1;
                    return;
                }
                for step in g.steps() {
                    let next = pos + step;
                    if next > s.len() {
                        break;
                    }
                    chars.push(s.at1(next));
                    walk(s, g, next, left - 1, chars, counts);
                    chars.pop();
                }
            }
            let mut chars = Vec::new();
            walk(&s, g, r, m, &mut chars, &mut counts);
            let k_expected = counts.values().copied().max().unwrap_or(0);
            assert_eq!(kr(&s, g, m, r), k_expected, "K_{r}");
            expected_em = expected_em.max(k_expected);
        }
        assert_eq!(compute_em(&s, g, m), expected_em);
    }

    #[test]
    fn estimate_never_exceeds_exact() {
        use perigap_seq::gen::iid::uniform;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let s = uniform(&mut StdRng::seed_from_u64(7), Alphabet::Dna, 300);
        let g = gap(2, 4);
        let exact = compute_em(&s, g, 4);
        for sample in [1, 5, 20, 300] {
            assert!(estimate_em(&s, g, 4, sample) <= exact);
        }
        // Sampling every position recovers the exact value.
        assert_eq!(estimate_em(&s, g, 4, 300), exact);
    }

    #[test]
    #[should_panic(expected = "m ≥ 1")]
    fn m_zero_panics() {
        let s = Sequence::dna("ACGT").unwrap();
        let _ = compute_em(&s, gap(1, 2), 0);
    }
}
