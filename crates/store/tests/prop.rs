//! Property tests: every sequence and synthetic outcome round-trips,
//! and random corruption never loads silently.

use perigap_core::result::{FrequentPattern, MineOutcome, MineStats};
use perigap_core::{GapRequirement, Pattern};
use perigap_seq::{Alphabet, Sequence};
use perigap_store::{load_outcome, load_sequence, save_outcome, save_sequence, StoreError};
use proptest::prelude::*;

proptest! {
    #[test]
    fn dna_sequences_roundtrip(codes in proptest::collection::vec(0u8..4, 0..600)) {
        let seq = Sequence::from_codes(Alphabet::Dna, codes).unwrap();
        let buf = save_sequence(Vec::new(), &seq).unwrap();
        prop_assert_eq!(load_sequence(&buf[..]).unwrap(), seq);
    }

    #[test]
    fn protein_sequences_roundtrip(codes in proptest::collection::vec(0u8..20, 0..300)) {
        let seq = Sequence::from_codes(Alphabet::Protein, codes).unwrap();
        let buf = save_sequence(Vec::new(), &seq).unwrap();
        prop_assert_eq!(load_sequence(&buf[..]).unwrap(), seq);
    }

    #[test]
    fn outcomes_roundtrip(
        patterns in proptest::collection::vec(
            (proptest::collection::vec(0u8..4, 1..12), 0u64..1_000_000, 0.0f64..1.0),
            0..40
        ),
        gap_min in 0usize..10,
        gap_w in 0usize..5,
    ) {
        let outcome = MineOutcome {
            frequent: patterns
                .into_iter()
                .map(|(codes, sup, ratio)| FrequentPattern {
                    pattern: Pattern::from_codes(codes),
                    support: sup as u128,
                    ratio,
                })
                .collect(),
            stats: MineStats { n_used: 13, ..MineStats::default() },
        };
        let gap = GapRequirement::new(gap_min, gap_min + gap_w).unwrap();
        let buf = save_outcome(Vec::new(), &outcome, gap, 0.25).unwrap();
        let loaded = load_outcome(&buf[..]).unwrap();
        prop_assert_eq!(loaded.gap, gap);
        prop_assert_eq!(loaded.outcome.frequent.len(), outcome.frequent.len());
        for (a, b) in loaded.outcome.frequent.iter().zip(&outcome.frequent) {
            prop_assert_eq!(&a.pattern, &b.pattern);
            prop_assert_eq!(a.support, b.support);
            prop_assert_eq!(a.ratio, b.ratio);
        }
    }

    #[test]
    fn single_bit_corruption_never_loads(
        codes in proptest::collection::vec(0u8..4, 1..300),
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let seq = Sequence::from_codes(Alphabet::Dna, codes).unwrap();
        let mut buf = save_sequence(Vec::new(), &seq).unwrap();
        let idx = ((buf.len() - 1) as f64 * byte_frac) as usize;
        buf[idx] ^= 1 << bit;
        // Every byte of the file is either hashed content or the
        // trailing checksum itself, so any single-bit flip must fail.
        prop_assert!(load_sequence(&buf[..]).is_err());
        let _ = seq;
    }
}

#[test]
fn checksum_error_is_reported_with_both_values() {
    let seq = Sequence::dna(&"ACGT".repeat(64)).unwrap();
    let mut buf = save_sequence(Vec::new(), &seq).unwrap();
    let mid = 20;
    buf[mid] ^= 0x01;
    match load_sequence(&buf[..]) {
        Err(StoreError::ChecksumMismatch { stored, computed }) => {
            assert_ne!(stored, computed);
        }
        Err(other) => {
            // Corruption of structural fields can also fail earlier.
            let msg = other.to_string();
            assert!(!msg.is_empty());
        }
        Ok(_) => panic!("corrupted file loaded"),
    }
}
