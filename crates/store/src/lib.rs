//! # perigap-store
//!
//! Versioned binary persistence for the *perigap* workspace: save and
//! load subject sequences and mined outcomes. A mining run over a
//! genome can take minutes; its results should survive the process.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic "PGST" | u32 version | u8 section tag | section payload … | u64 FNV-1a checksum
//! ```
//!
//! DNA sequences are stored 2-bit packed ([`perigap_seq::PackedDna`]);
//! other alphabets store raw codes. Every file ends with a checksum of
//! all preceding bytes, so truncated or corrupted files are rejected
//! rather than half-loaded.

#![warn(missing_docs)]

pub mod backend;
pub mod index;
pub mod wire;

pub use backend::{Backend, MemoryBackend, PgstFileBackend, StoreBackend};
pub use index::{IndexEntry, PatternIndex};

use perigap_core::result::{FrequentPattern, MineOutcome, MineStats};
use perigap_core::{GapRequirement, Pattern};
use perigap_seq::{Alphabet, PackedDna, Sequence};
use std::fmt;
use std::io::{Read, Write};
use wire::{Reader, Writer};

const MAGIC: &[u8; 4] = b"PGST";
const VERSION: u32 = 1;
const TAG_SEQUENCE: u8 = 1;
const TAG_OUTCOME: u8 = 2;
/// Section tag reserved for DFS spill records. The records themselves
/// are written by `perigap_core::spill` (the dependency points the
/// other way, so core duplicates the wire conventions), but they use
/// the same magic, version, and trailing-checksum layout and can be
/// decoded with [`wire::Reader`].
pub const TAG_SPILL: u8 = 3;
/// Section tag for per-shard corpus checkpoint records
/// (`shard-*.pgck`), written by `perigap_core::corpus` under the same
/// PGST conventions as [`TAG_SPILL`]: magic, version, tag byte, then
/// the shard payload, closed by a trailing FNV-1a digest.
pub const TAG_CORPUS_CHECKPOINT: u8 = 4;
/// Section tag for the corpus checkpoint manifest (`manifest.pgcm`),
/// written by `perigap_core::corpus` — it pins the corpus hash, the
/// mining parameters, and the completed-shard bitmap a resume
/// validates against.
pub const TAG_CORPUS_MANIFEST: u8 = 5;
/// Sanity cap for on-disk blobs (1 GiB) — far above any real input,
/// low enough to refuse nonsense lengths from corrupt files.
const MAX_BLOB: u64 = 1 << 30;

/// Errors raised while saving or loading.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a perigap store or uses an unknown version.
    BadHeader(String),
    /// Structurally invalid contents.
    Corrupt(String),
    /// A length-prefixed blob claims more bytes than the caller's
    /// sanity limit allows — almost certainly a corrupt or hostile
    /// length field, refused before any allocation happens.
    BlobTooLarge {
        /// Length the file claims the blob has.
        len: u64,
        /// The sanity limit the caller imposed.
        max_len: u64,
    },
    /// The trailing checksum does not match.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        stored: u64,
        /// Checksum computed over the bytes actually read.
        computed: u64,
    },
    /// The file ended mid-read: a store cut short mid-section or
    /// mid-checksum. Distinguished from [`StoreError::Io`] so callers
    /// (and the serve daemon) can tell "partial file" from "disk
    /// trouble".
    Truncated {
        /// The section being read when the input ran out.
        section: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
            StoreError::BadHeader(msg) => write!(f, "bad store header: {msg}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
            StoreError::BlobTooLarge { len, max_len } => {
                write!(f, "blob length {len} exceeds the sanity limit {max_len}")
            }
            StoreError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: file says {stored:#018x}, contents hash to {computed:#018x}"
            ),
            StoreError::Truncated { section } => {
                write!(f, "truncated store: input ended while reading {section}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

fn write_header<W: Write>(w: &mut Writer<W>, tag: u8) -> Result<(), StoreError> {
    w.bytes(MAGIC)?;
    w.u32(VERSION)?;
    w.u8(tag)
}

fn read_header<R: Read>(r: &mut Reader<R>, expected_tag: u8) -> Result<(), StoreError> {
    r.section("file header");
    let magic = r.bytes(4)?;
    if magic != MAGIC {
        return Err(StoreError::BadHeader(format!("magic {magic:02x?}")));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(StoreError::BadHeader(format!(
            "version {version} (this build reads {VERSION})"
        )));
    }
    let tag = r.u8()?;
    if tag != expected_tag {
        return Err(StoreError::BadHeader(format!(
            "section tag {tag} where {expected_tag} was expected"
        )));
    }
    Ok(())
}

/// Alphabet encoding on disk.
fn alphabet_code(alphabet: &Alphabet) -> (u8, Vec<u8>) {
    match alphabet {
        Alphabet::Dna => (0, Vec::new()),
        Alphabet::Protein => (1, Vec::new()),
        Alphabet::Custom(_) => (2, alphabet.letters().collect()),
    }
}

fn alphabet_from_code(code: u8, letters: &[u8]) -> Result<Alphabet, StoreError> {
    match code {
        0 => Ok(Alphabet::Dna),
        1 => Ok(Alphabet::Protein),
        2 => Alphabet::custom(letters)
            .map_err(|e| StoreError::Corrupt(format!("custom alphabet: {e}"))),
        other => Err(StoreError::Corrupt(format!(
            "unknown alphabet code {other}"
        ))),
    }
}

/// Save a sequence. DNA payloads are 2-bit packed.
pub fn save_sequence<W: Write>(sink: W, seq: &Sequence) -> Result<W, StoreError> {
    let mut w = Writer::new(sink);
    write_header(&mut w, TAG_SEQUENCE)?;
    let (code, letters) = alphabet_code(seq.alphabet());
    w.u8(code)?;
    w.blob(&letters)?;
    w.u64(seq.len() as u64)?;
    if *seq.alphabet() == Alphabet::Dna {
        let packed = PackedDna::from_sequence(seq);
        // Re-collect the packed payload bytes.
        let mut payload = Vec::with_capacity(seq.len().div_ceil(4));
        let mut cur = 0u8;
        for (i, code) in packed.iter().enumerate() {
            cur |= code << (2 * (i % 4));
            if i % 4 == 3 {
                payload.push(cur);
                cur = 0;
            }
        }
        if !seq.len().is_multiple_of(4) {
            payload.push(cur);
        }
        w.blob(&payload)?;
    } else {
        w.blob(seq.codes())?;
    }
    w.finish()
}

/// Load a sequence saved by [`save_sequence`].
pub fn load_sequence<R: Read>(source: R) -> Result<Sequence, StoreError> {
    let mut r = Reader::new(source);
    read_header(&mut r, TAG_SEQUENCE)?;
    r.section("alphabet");
    let code = r.u8()?;
    let letters = r.blob(256)?;
    let alphabet = alphabet_from_code(code, &letters)?;
    r.section("sequence length");
    let len = r.u64()? as usize;
    r.section("sequence payload");
    let seq = if alphabet == Alphabet::Dna {
        let payload = r.blob(MAX_BLOB)?;
        if payload.len() != len.div_ceil(4) {
            return Err(StoreError::Corrupt(format!(
                "packed payload holds {} bytes for {len} bases",
                payload.len()
            )));
        }
        let mut codes = Vec::with_capacity(len);
        for i in 0..len {
            codes.push((payload[i / 4] >> (2 * (i % 4))) & 0b11);
        }
        Sequence::from_codes(Alphabet::Dna, codes).expect("2-bit codes are valid")
    } else {
        let codes = r.blob(MAX_BLOB)?;
        if codes.len() != len {
            return Err(StoreError::Corrupt(format!(
                "payload holds {} codes for stated length {len}",
                codes.len()
            )));
        }
        Sequence::from_codes(alphabet, codes)
            .map_err(|e| StoreError::Corrupt(format!("invalid codes: {e}")))?
    };
    r.verify_checksum()?;
    Ok(seq)
}

/// Save a mined outcome together with the run parameters that produced
/// it (gap requirement and ρs), so a loaded file is self-describing.
pub fn save_outcome<W: Write>(
    sink: W,
    outcome: &MineOutcome,
    gap: GapRequirement,
    rho: f64,
) -> Result<W, StoreError> {
    let mut w = Writer::new(sink);
    write_header(&mut w, TAG_OUTCOME)?;
    w.u64(gap.min() as u64)?;
    w.u64(gap.max() as u64)?;
    w.f64(rho)?;
    w.u64(outcome.stats.n_used as u64)?;
    w.u64(outcome.frequent.len() as u64)?;
    for f in &outcome.frequent {
        w.blob(f.pattern.codes())?;
        w.u128(f.support)?;
        w.f64(f.ratio)?;
    }
    w.finish()
}

/// A loaded outcome with its run parameters.
#[derive(Debug)]
pub struct LoadedOutcome {
    /// The mined patterns (stats are not persisted — only `n_used`).
    pub outcome: MineOutcome,
    /// Gap requirement of the original run.
    pub gap: GapRequirement,
    /// Support threshold of the original run.
    pub rho: f64,
}

/// Load an outcome saved by [`save_outcome`].
pub fn load_outcome<R: Read>(source: R) -> Result<LoadedOutcome, StoreError> {
    let mut r = Reader::new(source);
    read_header(&mut r, TAG_OUTCOME)?;
    r.section("run parameters");
    let gap_min = r.u64()? as usize;
    let gap_max = r.u64()? as usize;
    let gap = GapRequirement::new(gap_min, gap_max)
        .map_err(|e| StoreError::Corrupt(format!("gap requirement: {e}")))?;
    let rho = r.f64()?;
    if !(rho > 0.0 && rho <= 1.0) {
        return Err(StoreError::Corrupt(format!("threshold {rho} out of range")));
    }
    let n_used = r.u64()? as usize;
    r.section("pattern count");
    let count = r.u64()?;
    if count > 100_000_000 {
        return Err(StoreError::Corrupt(format!("absurd pattern count {count}")));
    }
    r.section("pattern table");
    // The count is attacker-controlled until the checksum verifies:
    // cap the up-front reservation and let the vector grow normally.
    let mut frequent = Vec::with_capacity((count as usize).min(4096));
    for _ in 0..count {
        let codes = r.blob(4096)?;
        if codes.is_empty() {
            return Err(StoreError::Corrupt("empty pattern".into()));
        }
        let support = r.u128()?;
        let ratio = r.f64()?;
        frequent.push(FrequentPattern {
            pattern: Pattern::from_codes(codes),
            support,
            ratio,
        });
    }
    r.verify_checksum()?;
    let outcome = MineOutcome {
        frequent,
        stats: MineStats {
            n_used,
            ..MineStats::default()
        },
    };
    Ok(LoadedOutcome { outcome, gap, rho })
}

#[cfg(test)]
mod tests {
    use super::*;
    use perigap_core::mpp::MppConfig;
    use perigap_core::mppm::mppm;
    use perigap_seq::gen::iid::uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dna(len: usize, seed: u64) -> Sequence {
        uniform(&mut StdRng::seed_from_u64(seed), Alphabet::Dna, len)
    }

    #[test]
    fn sequence_roundtrip_dna() {
        for len in [0usize, 1, 3, 4, 5, 257, 1000] {
            let seq = dna(len, 42 + len as u64);
            let buf = save_sequence(Vec::new(), &seq).unwrap();
            let back = load_sequence(&buf[..]).unwrap();
            assert_eq!(back, seq, "len {len}");
        }
    }

    #[test]
    fn sequence_roundtrip_protein_and_custom() {
        let protein = Sequence::protein("MKWVTFISLLLLFSSAYS").unwrap();
        let buf = save_sequence(Vec::new(), &protein).unwrap();
        assert_eq!(load_sequence(&buf[..]).unwrap(), protein);

        let alphabet = Alphabet::custom(b"01#").unwrap();
        let custom = Sequence::from_str_checked(alphabet, "0101##10").unwrap();
        let buf = save_sequence(Vec::new(), &custom).unwrap();
        assert_eq!(load_sequence(&buf[..]).unwrap(), custom);
    }

    #[test]
    fn dna_storage_is_packed() {
        let seq = dna(10_000, 7);
        let buf = save_sequence(Vec::new(), &seq).unwrap();
        // Header + packed payload + checksum: ~2,500 payload bytes, not 10,000.
        assert!(buf.len() < 2_700, "file is {} bytes", buf.len());
    }

    #[test]
    fn outcome_roundtrip() {
        let seq = dna(200, 9);
        let gap = GapRequirement::new(1, 3).unwrap();
        let rho = 0.001;
        let outcome = mppm(&seq, gap, rho, 3, MppConfig::default()).unwrap();
        assert!(!outcome.frequent.is_empty());
        let buf = save_outcome(Vec::new(), &outcome, gap, rho).unwrap();
        let loaded = load_outcome(&buf[..]).unwrap();
        assert_eq!(loaded.gap, gap);
        assert_eq!(loaded.rho, rho);
        assert_eq!(loaded.outcome.stats.n_used, outcome.stats.n_used);
        assert_eq!(loaded.outcome.frequent.len(), outcome.frequent.len());
        for (a, b) in loaded.outcome.frequent.iter().zip(&outcome.frequent) {
            assert_eq!(a.pattern, b.pattern);
            assert_eq!(a.support, b.support);
            assert_eq!(a.ratio, b.ratio);
        }
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let seq = dna(40, 3);
        let mut buf = save_sequence(Vec::new(), &seq).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            load_sequence(&buf[..]),
            Err(StoreError::BadHeader(_))
        ));

        let mut buf = save_sequence(Vec::new(), &seq).unwrap();
        buf[4] = 99; // version
        assert!(matches!(
            load_sequence(&buf[..]),
            Err(StoreError::BadHeader(_))
        ));
    }

    #[test]
    fn cross_section_loads_are_rejected() {
        let seq = dna(40, 4);
        let buf = save_sequence(Vec::new(), &seq).unwrap();
        assert!(matches!(
            load_outcome(&buf[..]),
            Err(StoreError::BadHeader(_))
        ));
    }

    #[test]
    fn bit_flip_is_detected() {
        let seq = dna(300, 5);
        let mut buf = save_sequence(Vec::new(), &seq).unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 0x10;
        let result = load_sequence(&buf[..]);
        assert!(result.is_err(), "corruption must not load silently");
    }

    #[test]
    fn truncation_is_detected() {
        let seq = dna(300, 6);
        let buf = save_sequence(Vec::new(), &seq).unwrap();
        let result = load_sequence(&buf[..buf.len() - 3]);
        assert!(matches!(result, Err(StoreError::Truncated { .. })));
    }

    /// An outcome file cut at *any* byte — mid-header, mid-pattern,
    /// mid-checksum — must yield a typed error, never a partial
    /// `LoadedOutcome` and never a panic.
    #[test]
    fn outcome_truncated_at_every_byte_yields_a_typed_error() {
        let seq = dna(200, 10);
        let gap = GapRequirement::new(1, 3).unwrap();
        let outcome = mppm(&seq, gap, 0.001, 3, MppConfig::default()).unwrap();
        assert!(outcome.frequent.len() >= 2, "need a multi-pattern table");
        let buf = save_outcome(Vec::new(), &outcome, gap, 0.001).unwrap();
        for len in 0..buf.len() {
            match load_outcome(&buf[..len]) {
                Err(
                    StoreError::Truncated { .. }
                    | StoreError::BadHeader(_)
                    | StoreError::Corrupt(_)
                    | StoreError::ChecksumMismatch { .. },
                ) => {}
                Err(other) => panic!("prefix of {len} bytes: untyped error {other:?}"),
                Ok(_) => panic!("prefix of {len} bytes loaded as a full outcome"),
            }
        }
        // The named section boundaries report truncation specifically.
        let boundaries = [
            (4, "file header"),     // mid-version
            (12, "run parameters"), // mid-gap
            (42, "pattern count"),  // one byte into the count
            (50, "pattern table"),  // mid-first-pattern
            (buf.len() - 3, "checksum trailer"),
        ];
        for (len, want) in boundaries {
            match load_outcome(&buf[..len]) {
                Err(StoreError::Truncated { section }) => {
                    assert_eq!(section, want, "cut at byte {len}");
                }
                other => panic!("cut at byte {len}: expected Truncated({want}), got {other:?}"),
            }
        }
    }

    #[test]
    fn file_roundtrip() {
        let seq = dna(500, 8);
        let path =
            std::env::temp_dir().join(format!("perigap-store-test-{}.pgst", std::process::id()));
        let file = std::fs::File::create(&path).unwrap();
        save_sequence(file, &seq).unwrap();
        let back = load_sequence(std::fs::File::open(&path).unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, seq);
    }

    /// Captures every record the engine spills, while serving reads
    /// from the real in-memory backend, so the raw bytes survive the
    /// engine's post-restore cleanup.
    #[derive(Debug, Default)]
    struct CapturingSpillIo {
        inner: perigap_core::spill::MemSpillIo,
        captured: std::sync::Mutex<Vec<(u64, Vec<u8>)>>,
    }

    impl perigap_core::spill::SpillIo for CapturingSpillIo {
        fn write(&self, record: u64, bytes: &[u8]) -> std::io::Result<()> {
            self.captured.lock().unwrap().push((record, bytes.to_vec()));
            self.inner.write(record, bytes)
        }

        fn read(&self, record: u64) -> std::io::Result<Vec<u8>> {
            self.inner.read(record)
        }

        fn remove(&self, record: u64) -> std::io::Result<()> {
            self.inner.remove(record)
        }
    }

    /// Spill records are written by `perigap_core::spill` (this crate
    /// sits above core, so core cannot call our writer), but they must
    /// stay decodable with the plain PGST [`wire::Reader`] — same
    /// magic, version, tag byte and trailing FNV-1a digest.
    #[test]
    fn spill_records_honor_the_store_wire_format() {
        use perigap_core::dfs::mpp_dfs;
        use std::sync::Arc;

        let seq = Sequence::dna(&"AT".repeat(50)).unwrap();
        let io = Arc::new(CapturingSpillIo::default());
        let config = MppConfig {
            max_arena_bytes: Some(1 << 20),
            spill_watermark: 0.0,
            spill_io: Some(Arc::clone(&io) as Arc<dyn perigap_core::spill::SpillIo>),
            ..MppConfig::default()
        };
        let gap = GapRequirement::new(1, 1).unwrap();
        let outcome = mpp_dfs(&seq, gap, 0.4, 20, config, 1).unwrap();
        assert!(outcome.stats.spilled_records >= 2, "workload must spill");

        let captured = io.captured.lock().unwrap();
        assert_eq!(captured.len() as u64, outcome.stats.spilled_records);
        for (record, bytes) in captured.iter() {
            let mut r = Reader::new(&bytes[..]);
            assert_eq!(r.bytes(4).unwrap(), MAGIC, "record {record}");
            assert_eq!(r.u32().unwrap(), VERSION, "record {record}");
            assert_eq!(r.u8().unwrap(), TAG_SPILL, "record {record}");
            assert_eq!(r.u64().unwrap(), *record);
            let level = r.u32().unwrap() as usize;
            assert!(level >= 1, "record {record}");
            assert!(r.u8().unwrap() <= 1, "record {record}: saturated flag");
            let n_patterns = r.u32().unwrap();
            assert!(n_patterns >= 1, "record {record}");
            for _ in 0..n_patterns {
                let _codes = r.bytes(level).unwrap();
                let n_entries = r.u32().unwrap();
                for _ in 0..n_entries {
                    let _offset = r.u32().unwrap();
                    let _count = r.u64().unwrap();
                }
            }
            r.verify_checksum()
                .expect("digest must match the store convention");
        }
    }

    /// Corpus checkpoint artifacts are likewise written by
    /// `perigap_core::corpus`, but both the per-shard records and the
    /// manifest must stay decodable with the plain PGST
    /// [`wire::Reader`] under the tags this crate reserves for them.
    #[test]
    fn corpus_checkpoints_honor_the_store_wire_format() {
        use perigap_core::corpus::{mine_corpus, CheckpointConfig, Corpus, CorpusMineConfig};
        use std::sync::Arc;

        let dir = std::env::temp_dir().join(format!(
            "perigap-store-corpus-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let seqs: Vec<(String, Sequence)> = (0..3)
            .map(|i| {
                (
                    format!("seq-{i}"),
                    Sequence::dna(&"ACGTT".repeat(30 + 10 * i)).unwrap(),
                )
            })
            .collect();
        let corpus_path = dir.join("corpus.pgco");
        let hash = Corpus::write(&corpus_path, &seqs).unwrap();
        let corpus = Arc::new(Corpus::open(&corpus_path).unwrap());
        let ckpt_dir = dir.join("ckpt");
        let gap = GapRequirement::new(1, 3).unwrap();
        let outcome = mine_corpus(
            &corpus,
            gap,
            0.005,
            &CorpusMineConfig {
                min_sequences: 2,
                checkpoint: Some(CheckpointConfig::fresh(&ckpt_dir)),
                ..CorpusMineConfig::default()
            },
        )
        .unwrap();
        assert!(!outcome.outcome.patterns.is_empty(), "fixture must mine");
        assert_eq!(outcome.stats.checkpoint_records, 3);

        for shard in 0..3u64 {
            let bytes = std::fs::read(ckpt_dir.join(format!("shard-{shard:08}.pgck"))).unwrap();
            let mut r = Reader::new(&bytes[..]);
            assert_eq!(r.bytes(4).unwrap(), MAGIC, "shard {shard}");
            assert_eq!(r.u32().unwrap(), VERSION, "shard {shard}");
            assert_eq!(r.u8().unwrap(), TAG_CORPUS_CHECKPOINT, "shard {shard}");
            assert_eq!(r.u64().unwrap(), shard);
            assert_eq!(r.u64().unwrap(), hash, "shard {shard}: corpus hash");
            let n_patterns = r.u32().unwrap();
            assert!(n_patterns >= 1, "shard {shard}");
            for _ in 0..n_patterns {
                let len = r.u32().unwrap() as usize;
                let codes = r.bytes(len).unwrap();
                assert!(codes.iter().all(|&c| c < 4), "shard {shard}: DNA codes");
                assert!(r.u128().unwrap() >= 1, "shard {shard}: support");
            }
            r.verify_checksum()
                .expect("record digest must match the store convention");
        }

        let bytes = std::fs::read(ckpt_dir.join("manifest.pgcm")).unwrap();
        let mut r = Reader::new(&bytes[..]);
        assert_eq!(r.bytes(4).unwrap(), MAGIC);
        assert_eq!(r.u32().unwrap(), VERSION);
        assert_eq!(r.u8().unwrap(), TAG_CORPUS_MANIFEST);
        assert_eq!(r.u64().unwrap(), hash, "manifest: corpus hash");
        assert_eq!(r.u64().unwrap(), 1, "manifest: gap min");
        assert_eq!(r.u64().unwrap(), 3, "manifest: gap max");
        assert_eq!(r.u64().unwrap(), 0.005f64.to_bits(), "manifest: rho");
        assert_eq!(r.u64().unwrap(), 10, "manifest: n");
        assert_eq!(r.u64().unwrap(), 2, "manifest: min sequences");
        r.u64().unwrap(); // start level
        r.u64().unwrap(); // max level (u64::MAX = none)
        assert!(r.u8().unwrap() <= 1, "manifest: engine tag");
        let shards = r.u32().unwrap();
        assert_eq!(shards, 3);
        let bitmap = r.bytes(1).unwrap();
        assert_eq!(bitmap[0], 0b111, "all three shards complete");
        r.verify_checksum()
            .expect("manifest digest must match the store convention");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
