//! The storage seam behind `pgmine serve`: where a pattern set comes
//! from.
//!
//! [`StoreBackend`] is deliberately tiny — describe yourself, load the
//! pattern set — and [`Backend`] enum-dispatches over the concrete
//! implementations so call sites stay monomorphic and a future real
//! database can slot in as a third variant without touching the serve
//! loop. The PGST file store is backend #1; the in-memory backend
//! carries a just-mined outcome straight into the index (the
//! mine-then-serve path, tests, and the bench harness).

use crate::{load_outcome, LoadedOutcome, StoreError};
use perigap_core::result::MineOutcome;
use perigap_core::GapRequirement;
use std::path::{Path, PathBuf};

/// A source of mined pattern sets.
pub trait StoreBackend {
    /// Human-readable description for logs and the `stats` query.
    fn describe(&self) -> String;
    /// Load the pattern set with its run parameters.
    fn load(&self) -> Result<LoadedOutcome, StoreError>;
}

/// A PGST outcome file on disk (written by `pgmine mine --save` /
/// [`crate::save_outcome`]).
#[derive(Clone, Debug)]
pub struct PgstFileBackend {
    path: PathBuf,
}

impl PgstFileBackend {
    /// A backend reading `path`.
    pub fn new(path: impl Into<PathBuf>) -> PgstFileBackend {
        PgstFileBackend { path: path.into() }
    }

    /// The file the backend reads.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl StoreBackend for PgstFileBackend {
    fn describe(&self) -> String {
        format!("pgst-file:{}", self.path.display())
    }

    fn load(&self) -> Result<LoadedOutcome, StoreError> {
        load_outcome(std::fs::File::open(&self.path)?)
    }
}

/// An outcome already in memory — the mine-then-serve path.
#[derive(Clone, Debug)]
pub struct MemoryBackend {
    outcome: MineOutcome,
    gap: GapRequirement,
    rho: f64,
}

impl MemoryBackend {
    /// Wrap a mined outcome with its run parameters.
    pub fn new(outcome: MineOutcome, gap: GapRequirement, rho: f64) -> MemoryBackend {
        MemoryBackend { outcome, gap, rho }
    }
}

impl StoreBackend for MemoryBackend {
    fn describe(&self) -> String {
        format!("memory:{} patterns", self.outcome.frequent.len())
    }

    fn load(&self) -> Result<LoadedOutcome, StoreError> {
        Ok(LoadedOutcome {
            outcome: self.outcome.clone(),
            gap: self.gap,
            rho: self.rho,
        })
    }
}

/// Enum dispatch over the concrete backends (the hindsight `DbEngine`
/// idiom): one value names the storage choice, and every call site
/// matches once instead of carrying a trait object.
#[derive(Clone, Debug)]
pub enum Backend {
    /// A PGST outcome file on disk.
    PgstFile(PgstFileBackend),
    /// An outcome already in memory.
    Memory(MemoryBackend),
}

impl Backend {
    /// A file backend over `path`.
    pub fn pgst_file(path: impl Into<PathBuf>) -> Backend {
        Backend::PgstFile(PgstFileBackend::new(path))
    }

    /// A memory backend over a mined outcome.
    pub fn memory(outcome: MineOutcome, gap: GapRequirement, rho: f64) -> Backend {
        Backend::Memory(MemoryBackend::new(outcome, gap, rho))
    }

    /// The backend's self-description.
    pub fn describe(&self) -> String {
        match self {
            Backend::PgstFile(b) => b.describe(),
            Backend::Memory(b) => b.describe(),
        }
    }

    /// Load the pattern set with its run parameters.
    pub fn load(&self) -> Result<LoadedOutcome, StoreError> {
        match self {
            Backend::PgstFile(b) => b.load(),
            Backend::Memory(b) => b.load(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::save_outcome;
    use perigap_core::mpp::{mpp, MppConfig};
    use perigap_seq::Sequence;

    fn mined() -> (MineOutcome, GapRequirement, f64) {
        let seq = Sequence::dna(&"ACGT".repeat(25)).unwrap();
        let gap = GapRequirement::new(0, 2).unwrap();
        let outcome = mpp(&seq, gap, 0.001, 8, MppConfig::default()).unwrap();
        assert!(!outcome.frequent.is_empty(), "workload must mine patterns");
        (outcome, gap, 0.001)
    }

    #[test]
    fn file_and_memory_backends_agree() {
        let (outcome, gap, rho) = mined();
        let path =
            std::env::temp_dir().join(format!("perigap-backend-test-{}.pgst", std::process::id()));
        save_outcome(std::fs::File::create(&path).unwrap(), &outcome, gap, rho).unwrap();

        let file = Backend::pgst_file(&path);
        let mem = Backend::memory(outcome.clone(), gap, rho);
        assert!(file.describe().starts_with("pgst-file:"));
        assert!(mem.describe().starts_with("memory:"));

        let from_file = file.load().unwrap();
        let from_mem = mem.load().unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(from_file.gap, from_mem.gap);
        assert_eq!(from_file.rho, from_mem.rho);
        assert_eq!(from_file.outcome.frequent, from_mem.outcome.frequent);
    }

    #[test]
    fn file_backend_surfaces_typed_errors() {
        let missing = Backend::pgst_file("/nonexistent/deeply/missing.pgst");
        assert!(matches!(missing.load(), Err(StoreError::Io(_))));

        let path =
            std::env::temp_dir().join(format!("perigap-backend-trunc-{}.pgst", std::process::id()));
        let (outcome, gap, rho) = mined();
        let buf = save_outcome(Vec::new(), &outcome, gap, rho).unwrap();
        std::fs::write(&path, &buf[..buf.len() / 2]).unwrap();
        let truncated = Backend::pgst_file(&path);
        let err = truncated.load().unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(
            matches!(err, StoreError::Truncated { .. }),
            "a half-written store file is a typed truncation, got {err:?}"
        );
    }
}
