//! The in-memory query index behind `pgmine serve`.
//!
//! A mined pattern set is useful at serving scale only if the four
//! query kinds the daemon exposes — exact support, top-k by support,
//! prefix enumeration, and region overlap — answer without rescanning
//! the sequence. [`PatternIndex`] precomputes exactly what each needs:
//!
//! * **support / prefix** — entries sorted lexicographically by code
//!   string, so an exact lookup is one binary search and a prefix query
//!   is a contiguous range scan bounded by the prefix's byte-successor;
//! * **top-k** — a rank array sorted by `(support desc, len asc,
//!   codes asc)`, so top-k is a slice of the first `k` ranks and ties
//!   break deterministically;
//! * **overlap** — an optional per-pattern occurrence summary computed
//!   from the subject sequence: the ascending list of 1-based start
//!   offsets together with a running prefix-maximum of each start's
//!   furthest reachable match end. A pattern has an occurrence
//!   overlapping `[a, b]` iff some start `s ≤ b` reaches an end `≥ a`,
//!   which one binary search plus one prefix-max probe answers.
//!
//! The occurrence summary needs the subject sequence (PGST outcome
//!   files persist supports, not offset lists); an index built from a
//! file alone serves the other three kinds and reports overlap queries
//! as unavailable.

use crate::LoadedOutcome;
use perigap_core::{GapRequirement, Pattern};
use perigap_seq::{Alphabet, Sequence};

/// One pattern in the index.
#[derive(Clone, Debug)]
pub struct IndexEntry {
    /// The pattern's code string.
    pub pattern: Pattern,
    /// Exact support from the mine.
    pub support: u128,
    /// `support / n` from the mine.
    pub ratio: f64,
    occ: Option<OccSummary>,
}

impl IndexEntry {
    /// Render the pattern under the index's alphabet.
    pub fn display(&self, alphabet: &Alphabet) -> String {
        self.pattern.display(alphabet)
    }
}

/// Per-pattern occurrence summary for overlap queries.
#[derive(Clone, Debug)]
struct OccSummary {
    /// Ascending 1-based offsets where a match starts.
    starts: Vec<u32>,
    /// `prefix_max_end[i]` = the furthest 1-based end offset reachable
    /// from any start in `starts[..=i]`.
    prefix_max_end: Vec<u32>,
}

impl OccSummary {
    /// Does any occurrence `[s, e]` satisfy `s ≤ b && e ≥ a`?
    fn overlaps(&self, a: u32, b: u32) -> bool {
        // Last start ≤ b.
        let idx = self.starts.partition_point(|&s| s <= b);
        idx > 0 && self.prefix_max_end[idx - 1] >= a
    }
}

/// The immutable in-memory index the serve daemon answers from.
#[derive(Clone, Debug)]
pub struct PatternIndex {
    /// Entries sorted lexicographically by code string.
    entries: Vec<IndexEntry>,
    /// Entry indices sorted by `(support desc, len asc, codes asc)`.
    by_support: Vec<u32>,
    alphabet: Alphabet,
    gap: GapRequirement,
    rho: f64,
    n_used: usize,
    has_occurrences: bool,
}

impl PatternIndex {
    /// Build an index over a loaded outcome. When `seq` is given, the
    /// per-pattern occurrence summaries are computed from it and
    /// overlap queries become available.
    pub fn build(
        loaded: &LoadedOutcome,
        alphabet: Alphabet,
        seq: Option<&Sequence>,
    ) -> PatternIndex {
        let gap = loaded.gap;
        let mut entries: Vec<IndexEntry> = loaded
            .outcome
            .frequent
            .iter()
            .map(|f| IndexEntry {
                pattern: f.pattern.clone(),
                support: f.support,
                ratio: f.ratio,
                occ: seq.map(|s| occurrence_summary(s, gap, f.pattern.codes())),
            })
            .collect();
        entries.sort_by(|a, b| a.pattern.codes().cmp(b.pattern.codes()));
        entries.dedup_by(|a, b| a.pattern.codes() == b.pattern.codes());
        let mut by_support: Vec<u32> = (0..entries.len() as u32).collect();
        by_support.sort_by(|&i, &j| {
            let (a, b) = (&entries[i as usize], &entries[j as usize]);
            b.support
                .cmp(&a.support)
                .then(a.pattern.len().cmp(&b.pattern.len()))
                .then(a.pattern.codes().cmp(b.pattern.codes()))
        });
        PatternIndex {
            entries,
            by_support,
            alphabet,
            gap,
            rho: loaded.rho,
            n_used: loaded.outcome.stats.n_used,
            has_occurrences: seq.is_some(),
        }
    }

    /// Number of indexed patterns.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the index holds no patterns.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The alphabet patterns render under.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Gap requirement of the mine the index was built from.
    pub fn gap(&self) -> GapRequirement {
        self.gap
    }

    /// Support threshold of the mine.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// The `n` the mine used (denominator of the support ratios).
    pub fn n_used(&self) -> usize {
        self.n_used
    }

    /// True when overlap queries are available (the index was built
    /// with the subject sequence).
    pub fn has_occurrences(&self) -> bool {
        self.has_occurrences
    }

    /// Exact-support lookup by code string.
    pub fn support(&self, codes: &[u8]) -> Option<&IndexEntry> {
        self.entries
            .binary_search_by(|e| e.pattern.codes().cmp(codes))
            .ok()
            .map(|i| &self.entries[i])
    }

    /// The `k` highest-support patterns, ties broken by `(len, codes)`.
    pub fn top_k(&self, k: usize) -> impl Iterator<Item = &IndexEntry> {
        self.by_support
            .iter()
            .take(k)
            .map(|&i| &self.entries[i as usize])
    }

    /// Patterns whose code string starts with `prefix`, in lexicographic
    /// order: at most `limit` entries plus the total match count.
    pub fn prefix(&self, prefix: &[u8], limit: usize) -> (Vec<&IndexEntry>, usize) {
        let lo = self.entries.partition_point(|e| e.pattern.codes() < prefix);
        let matches = self.entries[lo..]
            .iter()
            .take_while(|e| e.pattern.codes().starts_with(prefix));
        let mut out = Vec::new();
        let mut total = 0usize;
        for e in matches {
            if out.len() < limit {
                out.push(e);
            }
            total += 1;
        }
        (out, total)
    }

    /// Patterns with an occurrence overlapping the 1-based offset range
    /// `[a, b]`, in `(support desc, len, codes)` order: at most `limit`
    /// entries plus the total match count. `None` when the index was
    /// built without the subject sequence.
    pub fn overlap(&self, a: u32, b: u32, limit: usize) -> Option<(Vec<&IndexEntry>, usize)> {
        if !self.has_occurrences {
            return None;
        }
        let mut out = Vec::new();
        let mut total = 0usize;
        for &i in &self.by_support {
            let e = &self.entries[i as usize];
            if e.occ.as_ref().is_some_and(|occ| occ.overlaps(a, b)) {
                if out.len() < limit {
                    out.push(e);
                }
                total += 1;
            }
        }
        Some((out, total))
    }
}

/// Compute a pattern's occurrence summary over `seq` by a backward
/// dynamic program: walking pattern positions last-to-first, a position
/// `i` matches pattern position `j` iff the codes agree and some
/// position in the gap window `[i + min_step, i + max_step]` matches
/// position `j + 1`; `max_end` carries the furthest reachable final
/// offset alongside. One `O(n · l · w)` pass (window width
/// `w = max_step − min_step + 1`) replaces per-query rematching.
fn occurrence_summary(seq: &Sequence, gap: GapRequirement, codes: &[u8]) -> OccSummary {
    let n = seq.len();
    let l = codes.len();
    if l == 0 || n == 0 {
        return OccSummary {
            starts: Vec::new(),
            prefix_max_end: Vec::new(),
        };
    }
    let data = seq.codes();
    // reach[i] = Some(furthest 1-based end) when a match of the current
    // suffix of the pattern starts at 0-based position i.
    let mut reach: Vec<Option<u32>> = data
        .iter()
        .enumerate()
        .map(|(i, &c)| (c == codes[l - 1]).then_some(i as u32 + 1))
        .collect();
    let (lo_step, hi_step) = (gap.min_step(), gap.max_step());
    for &code in codes[..l - 1].iter().rev() {
        let mut next: Vec<Option<u32>> = vec![None; n];
        for i in 0..n {
            if data[i] != code {
                continue;
            }
            let lo = i + lo_step;
            if lo >= n {
                continue;
            }
            let hi = (i + hi_step).min(n - 1);
            next[i] = reach[lo..=hi].iter().flatten().copied().max();
        }
        reach = next;
    }
    let mut starts = Vec::new();
    let mut prefix_max_end = Vec::new();
    let mut running = 0u32;
    for (i, e) in reach.iter().enumerate() {
        if let Some(e) = e {
            starts.push(i as u32 + 1);
            running = running.max(*e);
            prefix_max_end.push(running);
        }
    }
    OccSummary {
        starts,
        prefix_max_end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perigap_core::mpp::{mpp, MppConfig};
    use perigap_core::naive;
    use perigap_core::result::{MineOutcome, MineStats};
    use perigap_core::FrequentPattern;

    fn loaded_from(outcome: MineOutcome, gap: GapRequirement, rho: f64) -> LoadedOutcome {
        LoadedOutcome { outcome, gap, rho }
    }

    fn mined() -> (Sequence, GapRequirement, f64, LoadedOutcome) {
        let seq = Sequence::dna(&format!("{}AACCGGTT", "ACGT".repeat(30))).unwrap();
        let gap = GapRequirement::new(0, 2).unwrap();
        let rho = 0.001;
        let outcome = mpp(&seq, gap, rho, 10, MppConfig::default()).unwrap();
        assert!(outcome.frequent.len() >= 4, "workload must mine patterns");
        let loaded = loaded_from(outcome, gap, rho);
        (seq, gap, rho, loaded)
    }

    #[test]
    fn support_lookup_matches_the_mined_set() {
        let (seq, _, _, loaded) = mined();
        let index = PatternIndex::build(&loaded, Alphabet::Dna, Some(&seq));
        assert_eq!(index.len(), loaded.outcome.frequent.len());
        for f in &loaded.outcome.frequent {
            let e = index.support(f.pattern.codes()).expect("indexed");
            assert_eq!(e.support, f.support);
            assert_eq!(e.ratio, f.ratio);
        }
        assert!(index.support(&[0, 0, 0, 0, 0, 0, 0]).is_none());
    }

    #[test]
    fn top_k_is_sorted_and_deterministic() {
        let (_, _, _, loaded) = mined();
        let index = PatternIndex::build(&loaded, Alphabet::Dna, None);
        let top: Vec<_> = index.top_k(5).collect();
        assert_eq!(top.len(), 5.min(index.len()));
        for pair in top.windows(2) {
            assert!(
                pair[0].support > pair[1].support
                    || (pair[0].support == pair[1].support
                        && (pair[0].pattern.len(), pair[0].pattern.codes())
                            < (pair[1].pattern.len(), pair[1].pattern.codes())),
                "rank order must be (support desc, len, codes)"
            );
        }
        // k beyond the set size returns everything.
        assert_eq!(index.top_k(usize::MAX).count(), index.len());
    }

    #[test]
    fn prefix_query_equals_post_filtering() {
        let (_, _, _, loaded) = mined();
        let index = PatternIndex::build(&loaded, Alphabet::Dna, None);
        for prefix in [&[0u8][..], &[1], &[0, 1], &[2, 3, 0], &[]] {
            let (got, total) = index.prefix(prefix, usize::MAX);
            let mut want: Vec<&[u8]> = loaded
                .outcome
                .frequent
                .iter()
                .map(|f| f.pattern.codes())
                .filter(|c| c.starts_with(prefix))
                .collect();
            want.sort();
            assert_eq!(total, want.len(), "prefix {prefix:?}");
            let got_codes: Vec<&[u8]> = got.iter().map(|e| e.pattern.codes()).collect();
            assert_eq!(got_codes, want, "prefix {prefix:?}");
        }
        // The limit caps rows but not the reported total.
        let (capped, total) = index.prefix(&[], 3);
        assert_eq!(capped.len(), 3.min(index.len()));
        assert_eq!(total, index.len());
    }

    #[test]
    fn overlap_matches_the_naive_match_enumerator() {
        let (seq, gap, _, loaded) = mined();
        let index = PatternIndex::build(&loaded, Alphabet::Dna, Some(&seq));
        assert!(index.has_occurrences());
        for f in &loaded.outcome.frequent {
            let matches = naive::enumerate_matches(&seq, gap, &f.pattern);
            for (a, b) in [
                (1u32, 4u32),
                (5, 8),
                (10, 10),
                (1, seq.len() as u32),
                (20, 24),
            ] {
                let (hits, _) = index.overlap(a, b, usize::MAX).unwrap();
                let served = hits.iter().any(|e| e.pattern == f.pattern);
                let oracle = matches.iter().any(|m| {
                    let (first, last) = (m[0] as u32, *m.last().unwrap() as u32);
                    first <= b && last >= a
                });
                assert_eq!(
                    served,
                    oracle,
                    "pattern {:?} over [{a}, {b}]",
                    f.pattern.codes()
                );
            }
        }
        // Without the sequence, overlap is unavailable.
        let blind = PatternIndex::build(&loaded, Alphabet::Dna, None);
        assert!(blind.overlap(1, 4, 8).is_none());
    }

    #[test]
    fn empty_and_degenerate_inputs_are_harmless() {
        let gap = GapRequirement::new(1, 2).unwrap();
        let empty = loaded_from(MineOutcome::default(), gap, 0.5);
        let index = PatternIndex::build(&empty, Alphabet::Dna, None);
        assert!(index.is_empty());
        assert_eq!(index.top_k(5).count(), 0);
        assert_eq!(index.prefix(&[0], 5).1, 0);
        assert!(index.support(&[0]).is_none());

        // A pattern whose span exceeds the sequence end never matches.
        let seq = Sequence::dna("ACG").unwrap();
        let outcome = MineOutcome {
            frequent: vec![FrequentPattern {
                pattern: Pattern::from_codes(vec![0, 1, 2]),
                support: 1,
                ratio: 0.5,
            }],
            stats: MineStats::default(),
        };
        let loaded = loaded_from(outcome, GapRequirement::new(3, 5).unwrap(), 0.5);
        let index = PatternIndex::build(&loaded, Alphabet::Dna, Some(&seq));
        let (hits, total) = index.overlap(1, 3, 8).unwrap();
        assert!(hits.is_empty());
        assert_eq!(total, 0);
    }
}
