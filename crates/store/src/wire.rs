//! Primitive wire encoding: little-endian integers, length-prefixed
//! byte strings, and a running FNV-1a checksum.
//!
//! Everything the store writes goes through [`Writer`] (which hashes as
//! it writes) and comes back through [`Reader`] (which hashes as it
//! reads), so a trailing checksum catches truncation and corruption
//! without a second pass.

use crate::StoreError;
use std::io::{Read, Write};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Incremental FNV-1a hasher.
#[derive(Clone, Debug)]
pub struct Fnv1a {
    state: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a { state: FNV_OFFSET }
    }
}

impl Fnv1a {
    /// Fold bytes into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// The current digest.
    pub fn digest(&self) -> u64 {
        self.state
    }
}

/// A hashing writer.
pub struct Writer<W: Write> {
    inner: W,
    hash: Fnv1a,
}

impl<W: Write> Writer<W> {
    /// Wrap a sink.
    pub fn new(inner: W) -> Self {
        Writer {
            inner,
            hash: Fnv1a::default(),
        }
    }

    /// The checksum of everything written so far.
    pub fn digest(&self) -> u64 {
        self.hash.digest()
    }

    /// Write raw bytes (hashed).
    pub fn bytes(&mut self, b: &[u8]) -> Result<(), StoreError> {
        self.hash.update(b);
        self.inner.write_all(b).map_err(StoreError::from)
    }

    /// Write a `u8`.
    pub fn u8(&mut self, v: u8) -> Result<(), StoreError> {
        self.bytes(&[v])
    }

    /// Write a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> Result<(), StoreError> {
        self.bytes(&v.to_le_bytes())
    }

    /// Write a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> Result<(), StoreError> {
        self.bytes(&v.to_le_bytes())
    }

    /// Write a little-endian `u128`.
    pub fn u128(&mut self, v: u128) -> Result<(), StoreError> {
        self.bytes(&v.to_le_bytes())
    }

    /// Write an `f64` by bit pattern.
    pub fn f64(&mut self, v: f64) -> Result<(), StoreError> {
        self.u64(v.to_bits())
    }

    /// Write a length-prefixed byte string.
    pub fn blob(&mut self, b: &[u8]) -> Result<(), StoreError> {
        self.u64(b.len() as u64)?;
        self.bytes(b)
    }

    /// Append the trailing (unhashed) checksum and finish.
    pub fn finish(mut self) -> Result<W, StoreError> {
        let digest = self.hash.digest();
        self.inner
            .write_all(&digest.to_le_bytes())
            .map_err(StoreError::from)?;
        Ok(self.inner)
    }
}

/// A hashing reader.
pub struct Reader<R: Read> {
    inner: R,
    hash: Fnv1a,
    section: &'static str,
}

impl<R: Read> Reader<R> {
    /// Wrap a source.
    pub fn new(inner: R) -> Self {
        Reader {
            inner,
            hash: Fnv1a::default(),
            section: "store data",
        }
    }

    /// Name the section about to be read, so a short read reports
    /// *where* the file was cut ([`StoreError::Truncated`]).
    pub fn section(&mut self, name: &'static str) {
        self.section = name;
    }

    fn read_err(&self, e: std::io::Error) -> StoreError {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Truncated {
                section: self.section.to_string(),
            }
        } else {
            StoreError::Io(e)
        }
    }

    /// Read exactly `n` bytes (hashed). Reads in bounded chunks so a
    /// corrupt length field never triggers a giant up-front allocation
    /// — a short source fails with [`StoreError::Truncated`] after
    /// consuming only what actually exists.
    pub fn bytes(&mut self, n: usize) -> Result<Vec<u8>, StoreError> {
        const CHUNK: usize = 64 * 1024;
        let mut buf = Vec::with_capacity(n.min(CHUNK));
        while buf.len() < n {
            let start = buf.len();
            let want = (n - start).min(CHUNK);
            buf.resize(start + want, 0);
            if let Err(e) = self.inner.read_exact(&mut buf[start..]) {
                return Err(self.read_err(e));
            }
        }
        self.hash.update(&buf);
        Ok(buf)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.bytes(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("exact length")))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("exact length")))
    }

    /// Read a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, StoreError> {
        let b = self.bytes(16)?;
        Ok(u128::from_le_bytes(b.try_into().expect("exact length")))
    }

    /// Read an `f64` by bit pattern.
    pub fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed byte string, refusing absurd lengths.
    pub fn blob(&mut self, max_len: u64) -> Result<Vec<u8>, StoreError> {
        let len = self.u64()?;
        if len > max_len {
            return Err(StoreError::BlobTooLarge { len, max_len });
        }
        self.bytes(len as usize)
    }

    /// Verify the trailing checksum against everything read so far.
    pub fn verify_checksum(mut self) -> Result<(), StoreError> {
        self.section = "checksum trailer";
        let expected = self.hash.digest();
        let mut buf = [0u8; 8];
        if let Err(e) = self.inner.read_exact(&mut buf) {
            return Err(self.read_err(e));
        }
        let stored = u64::from_le_bytes(buf);
        if stored != expected {
            return Err(StoreError::ChecksumMismatch {
                stored,
                computed: expected,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut w = Writer::new(Vec::new());
        w.u8(7).unwrap();
        w.u32(0xDEAD_BEEF).unwrap();
        w.u64(u64::MAX - 1).unwrap();
        w.u128(u128::MAX / 3).unwrap();
        w.f64(0.12345).unwrap();
        w.blob(b"hello").unwrap();
        let buf = w.finish().unwrap();

        let mut r = Reader::new(&buf[..]);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.u128().unwrap(), u128::MAX / 3);
        assert_eq!(r.f64().unwrap(), 0.12345);
        assert_eq!(r.blob(1024).unwrap(), b"hello");
        r.verify_checksum().unwrap();
    }

    #[test]
    fn corruption_is_detected() {
        let mut w = Writer::new(Vec::new());
        w.blob(b"payload").unwrap();
        let mut buf = w.finish().unwrap();
        // Flip one payload bit.
        buf[9] ^= 1;
        let mut r = Reader::new(&buf[..]);
        let _ = r.blob(1024).unwrap();
        assert!(matches!(
            r.verify_checksum(),
            Err(StoreError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let mut w = Writer::new(Vec::new());
        w.u64(42).unwrap();
        let buf = w.finish().unwrap();
        let mut r = Reader::new(&buf[..4]);
        r.section("the answer");
        match r.u64() {
            Err(StoreError::Truncated { section }) => assert_eq!(section, "the answer"),
            other => panic!("expected Truncated, got {other:?}"),
        }

        // Cut mid-checksum: the trailer read reports its own section.
        let mut r = Reader::new(&buf[..buf.len() - 3]);
        let _ = r.u64().unwrap();
        match r.verify_checksum() {
            Err(StoreError::Truncated { section }) => assert_eq!(section, "checksum trailer"),
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn absurd_length_on_a_short_source_fails_without_a_giant_allocation() {
        // A corrupt length field claiming ~1 GiB over a 16-byte file
        // must fail after reading the 16 bytes — not allocate first.
        let mut w = Writer::new(Vec::new());
        w.u64((1 << 30) - 1).unwrap(); // blob length prefix
        w.u64(0xFEED).unwrap(); // the only actual payload bytes
        let buf = w.finish().unwrap();
        let started = std::time::Instant::now();
        let mut r = Reader::new(&buf[..]);
        assert!(matches!(r.blob(1 << 30), Err(StoreError::Truncated { .. })));
        assert!(
            started.elapsed() < std::time::Duration::from_secs(1),
            "short-circuit, not a gigabyte zero-fill"
        );
    }

    #[test]
    fn oversized_blob_is_refused() {
        let mut w = Writer::new(Vec::new());
        w.blob(&[0u8; 100]).unwrap();
        let buf = w.finish().unwrap();
        let mut r = Reader::new(&buf[..]);
        assert!(matches!(
            r.blob(10),
            Err(StoreError::BlobTooLarge {
                len: 100,
                max_len: 10
            })
        ));
    }

    #[test]
    fn oversized_blob_error_displays_both_lengths() {
        let mut w = Writer::new(Vec::new());
        w.blob(&[0u8; 100]).unwrap();
        let buf = w.finish().unwrap();
        let mut r = Reader::new(&buf[..]);
        let err = r.blob(10).unwrap_err();
        let text = err.to_string();
        assert!(
            text.contains("100") && text.contains("10"),
            "display must carry the claimed length and the limit: {text}"
        );
    }

    #[test]
    fn fnv_vectors() {
        // Known FNV-1a test vectors.
        let mut h = Fnv1a::default();
        h.update(b"");
        assert_eq!(h.digest(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv1a::default();
        h.update(b"a");
        assert_eq!(h.digest(), 0xaf63_dc4c_8601_ec8c);
    }
}
