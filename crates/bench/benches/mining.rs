//! End-to-end mining benchmarks: the per-figure workloads at reduced
//! scale (criterion needs many iterations; the full-scale runs live in
//! the `repro` binary).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use perigap_bench::data::ax_fragment;
use perigap_core::dfs::mpp_dfs;
use perigap_core::mpp::{mpp, MppConfig};
use perigap_core::mppm::mppm;
use perigap_core::parallel::mpp_parallel;
use perigap_core::pil::{join_multi_into, JoinCounters, MultiJoinScratch, Pil};
use perigap_core::profile::{mine_with_profile, GapProfile};
use perigap_core::GapRequirement;

const RHO: f64 = 0.003e-2;

fn gap() -> GapRequirement {
    GapRequirement::new(9, 12).expect("static gap")
}

fn bench_mpp_by_n(c: &mut Criterion) {
    // The Figure 5 effect in miniature: worse n estimates cost more.
    let seq = ax_fragment(500);
    let mut group = c.benchmark_group("mpp_by_n");
    group.sample_size(10);
    for n in [10usize, 20, 39] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| mpp(black_box(&seq), gap(), RHO, n, MppConfig::default()).expect("runs"));
        });
    }
    group.finish();
}

fn bench_mppm_by_len(c: &mut Criterion) {
    // The Figure 8 effect in miniature: linear scaling in L.
    let mut group = c.benchmark_group("mppm_by_len");
    group.sample_size(10);
    for len in [250usize, 500, 1_000] {
        let seq = ax_fragment(len);
        group.bench_with_input(BenchmarkId::from_parameter(len), &seq, |b, seq| {
            b.iter(|| mppm(black_box(seq), gap(), RHO, 6, MppConfig::default()).expect("runs"));
        });
    }
    group.finish();
}

fn bench_mppm_by_w(c: &mut Criterion) {
    // The Figure 6 effect in miniature: cost grows with flexibility.
    let seq = ax_fragment(500);
    let mut group = c.benchmark_group("mppm_by_w");
    group.sample_size(10);
    for w in [2usize, 4, 6] {
        let g = GapRequirement::new(9, 9 + w - 1).expect("sweep gap");
        group.bench_with_input(BenchmarkId::from_parameter(w), &g, |b, &g| {
            b.iter(|| mppm(black_box(&seq), g, RHO, 6, MppConfig::default()).expect("runs"));
        });
    }
    group.finish();
}

fn bench_parallel_threads(c: &mut Criterion) {
    // The crossbeam executor vs the serial engine on a join-heavy run.
    let seq = ax_fragment(1_000);
    let mut group = c.benchmark_group("mpp_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                mpp_parallel(black_box(&seq), gap(), RHO, 30, MppConfig::default(), t)
                    .expect("runs")
            });
        });
    }
    group.finish();
}

fn bench_profile_vs_uniform(c: &mut Criterion) {
    // The end-anchored profile miner against the PIL-join engine on the
    // same (uniform) requirement — the cost of generality.
    let seq = ax_fragment(500);
    let mut group = c.benchmark_group("profile_engine");
    group.sample_size(10);
    group.bench_function("pil_join_uniform", |b| {
        b.iter(|| mpp(black_box(&seq), gap(), RHO, 12, MppConfig::default()).expect("runs"));
    });
    group.bench_function("eil_profile_uniform", |b| {
        let profile = GapProfile::uniform(gap(), 12);
        b.iter(|| mine_with_profile(black_box(&seq), &profile, RHO, 12, 3).expect("runs"));
    });
    group.finish();
}

fn bench_engines(c: &mut Criterion) {
    // Breadth-first vs hybrid BFS→DFS on the same join-heavy workload.
    let seq = ax_fragment(1_000);
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("bfs", threads), &threads, |b, &t| {
            b.iter(|| {
                mpp_parallel(black_box(&seq), gap(), RHO, 30, MppConfig::default(), t)
                    .expect("runs")
            });
        });
        group.bench_with_input(BenchmarkId::new("dfs", threads), &threads, |b, &t| {
            b.iter(|| {
                mpp_dfs(black_box(&seq), gap(), RHO, 30, MppConfig::default(), t).expect("runs")
            });
        });
    }
    group.finish();
}

fn bench_join_kernel(c: &mut Criterion) {
    // One left parent joined against its whole suffix fan-out:
    // per-candidate `join_checked` calls vs the batched one-scan walk.
    let seq = ax_fragment(2_000);
    let g = gap();
    let pils: Vec<(Vec<u8>, Pil)> = Pil::build_all(&seq, g, 3)
        .into_iter()
        .map(|(p, pil)| (p.codes().to_vec(), pil))
        .collect();
    let (left_codes, left) = pils
        .iter()
        .max_by_key(|(_, pil)| pil.len())
        .expect("seed patterns exist");
    let partners: Vec<&Pil> = pils
        .iter()
        .filter(|(codes, _)| codes[..2] == left_codes[1..])
        .map(|(_, pil)| pil)
        .collect();
    assert!(!partners.is_empty());
    let mut group = c.benchmark_group("join_kernel");
    group.bench_function("per_candidate", |b| {
        b.iter(|| {
            for p in &partners {
                black_box(Pil::join_checked(black_box(left), p, g));
            }
        });
    });
    group.bench_function("batched_multi", |b| {
        let entries: Vec<&[(u32, u64)]> = partners.iter().map(|p| p.entries()).collect();
        let mut outs: Vec<Vec<(u32, u64)>> = vec![Vec::new(); entries.len()];
        let mut scratch = MultiJoinScratch::default();
        let mut jc = JoinCounters::default();
        b.iter(|| {
            join_multi_into(
                black_box(left.entries()),
                &entries,
                g,
                &mut outs,
                &mut scratch,
                &mut jc,
            );
            black_box(&outs);
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mpp_by_n,
    bench_mppm_by_len,
    bench_mppm_by_w,
    bench_parallel_threads,
    bench_profile_vs_uniform,
    bench_engines,
    bench_join_kernel
);
criterion_main!(benches);
