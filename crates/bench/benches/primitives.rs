//! Micro-benchmarks of the mining primitives: PIL construction and
//! joins, offset-sequence counting, and the e_m statistic.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use perigap_bench::data::ax_fragment;
use perigap_core::counts::OffsetCounts;
use perigap_core::em::{compute_em, estimate_em};
use perigap_core::pil::Pil;
use perigap_core::{GapRequirement, Pattern};

fn gap() -> GapRequirement {
    GapRequirement::new(9, 12).expect("static gap")
}

fn bench_pil_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("pil_build_level3");
    for len in [500usize, 1_000, 2_000] {
        let seq = ax_fragment(len);
        group.bench_with_input(BenchmarkId::from_parameter(len), &seq, |b, seq| {
            b.iter(|| Pil::build_all(black_box(seq), gap(), 3));
        });
    }
    group.finish();
}

fn bench_pil_join(c: &mut Criterion) {
    let seq = ax_fragment(1_000);
    let level3 = Pil::build_all(&seq, gap(), 3);
    // Join the best-populated pattern with an overlapping partner.
    let mut best: Option<(&Pattern, &Pil)> = None;
    for (p, pil) in &level3 {
        if best.is_none_or(|(_, bp)| pil.support() > bp.support()) {
            best = Some((p, pil));
        }
    }
    let (p1, pil1) = best.expect("non-empty level 3");
    let suffix = p1.suffix();
    let partner = level3
        .iter()
        .find(|(p, _)| suffix.is_prefix_of(p))
        .map(|(_, pil)| pil)
        .unwrap_or(pil1);
    c.bench_function("pil_join", |b| {
        b.iter(|| Pil::join(black_box(pil1), black_box(partner), gap()));
    });
}

fn bench_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("n_l");
    group.bench_function("exact_l13", |b| {
        b.iter(|| {
            // Fresh table each iteration: measures the computation, not
            // the cache.
            let counts = OffsetCounts::new(1_000, gap());
            black_box(counts.n(13))
        });
    });
    group.bench_function("boundary_l90", |b| {
        b.iter(|| {
            let counts = OffsetCounts::new(1_000, gap());
            black_box(counts.n(90))
        });
    });
    group.finish();
}

fn bench_em(c: &mut Criterion) {
    let mut group = c.benchmark_group("em");
    group.sample_size(10);
    let seq = ax_fragment(1_000);
    for m in [4usize, 8] {
        group.bench_with_input(BenchmarkId::new("exact", m), &m, |b, &m| {
            b.iter(|| compute_em(black_box(&seq), gap(), m));
        });
        group.bench_with_input(BenchmarkId::new("sampled_32", m), &m, |b, &m| {
            b.iter(|| estimate_em(black_box(&seq), gap(), m, 32));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pil_build,
    bench_pil_join,
    bench_counts,
    bench_em
);
criterion_main!(benches);
