//! Ablation benchmarks for the design choices called out in
//! DESIGN.md §5:
//!
//! 1. λ-pruning (MPP with a good `n`) vs none (`n` at the start level,
//!    which degenerates to a plain level-wise pass with ρs thresholds);
//! 2. exact e_m (branch-and-bound DFS) vs the sampled estimate;
//! 3. PIL join vs recounting a candidate's support from scratch with
//!    the position DP.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use perigap_bench::data::ax_fragment;
use perigap_core::em::{compute_em, estimate_em};
use perigap_core::mpp::{mpp, MppConfig};
use perigap_core::naive::support_dp;
use perigap_core::pil::Pil;
use perigap_core::{GapRequirement, Pattern};

const RHO: f64 = 0.003e-2;

fn gap() -> GapRequirement {
    GapRequirement::new(9, 12).expect("static gap")
}

fn ablate_lambda_pruning(c: &mut Criterion) {
    let seq = ax_fragment(500);
    let mut group = c.benchmark_group("lambda_pruning");
    group.sample_size(10);
    // Tuned n: Theorem 1 pruning active at every level.
    group.bench_function("with_lambda_n15", |b| {
        b.iter(|| mpp(black_box(&seq), gap(), RHO, 15, MppConfig::default()).expect("runs"));
    });
    // n = l1: λ so small early on that pruning barely bites — the
    // paper's worst case.
    let l1 = gap().l1(500);
    group.bench_function("worst_case_n_l1", |b| {
        b.iter(|| mpp(black_box(&seq), gap(), RHO, l1, MppConfig::default()).expect("runs"));
    });
    group.finish();
}

fn ablate_em_strategy(c: &mut Criterion) {
    let seq = ax_fragment(1_000);
    let mut group = c.benchmark_group("em_strategy");
    group.sample_size(10);
    group.bench_function("exact", |b| {
        b.iter(|| compute_em(black_box(&seq), gap(), 8));
    });
    group.bench_function("sampled_16", |b| {
        b.iter(|| estimate_em(black_box(&seq), gap(), 8, 16));
    });
    group.finish();
}

fn ablate_pil_vs_recount(c: &mut Criterion) {
    // Computing one level-6 candidate's support: join two level-5 PILs
    // vs recount from the sequence with the DP.
    let seq = ax_fragment(1_000);
    let g = gap();
    let pattern = Pattern::parse("ATATAT", &perigap_seq::Alphabet::Dna).expect("static pattern");
    let prefix = pattern.prefix();
    let suffix = pattern.suffix();
    let pil5 = Pil::build_all(&seq, g, 5);
    let empty = Pil::new();
    let p_pil = pil5.get(&prefix).unwrap_or(&empty);
    let s_pil = pil5.get(&suffix).unwrap_or(&empty);

    let mut group = c.benchmark_group("support_of_candidate");
    group.bench_function("pil_join", |b| {
        b.iter(|| Pil::join(black_box(p_pil), black_box(s_pil), g).support());
    });
    group.bench_function("dp_recount", |b| {
        b.iter(|| support_dp(black_box(&seq), g, black_box(&pattern)));
    });
    group.finish();
}

criterion_group!(
    benches,
    ablate_lambda_pruning,
    ablate_em_strategy,
    ablate_pil_vs_recount
);
criterion_main!(benches);
