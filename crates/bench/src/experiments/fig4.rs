//! Figure 4: execution time vs support threshold.
//!
//! (a) MPPm vs MPP worst case (`n = l1 = 77`);
//! (b) MPPm vs MPP best case (`n = no(ρs)`, the true longest frequent
//! pattern length).
//!
//! Paper configuration: L = 1000, gap [9,12], m = 10. Expected shapes:
//! times fall as ρs rises; MPPm beats the worst case by an order of
//! magnitude or more (paper: 16–30×) and trails the best case by a
//! small factor (paper: 1.5–3.7×).

use super::{paper, pct, timed};
use crate::data::ax_fragment;
use perigap_analysis::report::{seconds, TextTable};
use perigap_core::mpp::{mpp, MppConfig};
use perigap_core::mppm::mppm;
use perigap_core::GapRequirement;

/// One ρs row of the Figure 4 sweep.
#[derive(Clone, Debug)]
pub struct Fig4Row {
    /// Support threshold (fraction).
    pub rho: f64,
    /// True longest frequent pattern length `no(ρs)`.
    pub no: usize,
    /// MPPm's automatic estimate of `n`.
    pub n_estimated: usize,
    /// MPPm time.
    pub t_mppm: std::time::Duration,
    /// MPP worst-case time (`n = l1`), if measured.
    pub t_worst: Option<std::time::Duration>,
    /// MPP best-case time (`n = no`).
    pub t_best: std::time::Duration,
    /// Number of frequent patterns mined.
    pub frequent: usize,
}

/// Run the sweep. `include_worst` toggles the expensive worst-case runs
/// (Figure 4(a) needs them; 4(b) does not).
pub fn sweep(seq_len: usize, include_worst: bool, rhos_percent: &[f64]) -> Vec<Fig4Row> {
    let seq = ax_fragment(seq_len);
    let gap = GapRequirement::new(paper::GAP_MIN, paper::GAP_MAX).expect("static gap");
    let config = MppConfig::default();
    let mut rows = Vec::new();
    for &rho_pct in rhos_percent {
        let rho = rho_pct / 100.0;
        let (auto, t_mppm) =
            timed(|| mppm(&seq, gap, rho, paper::M, config.clone()).expect("mppm runs"));
        let no = auto.longest_len().max(3);
        let (best, t_best) =
            timed(|| mpp(&seq, gap, rho, no, config.clone()).expect("mpp best runs"));
        debug_assert_eq!(best.frequent.len(), auto.frequent.len());
        let t_worst = include_worst.then(|| {
            let l1 = gap.l1(seq.len());
            timed(|| mpp(&seq, gap, rho, l1, config.clone()).expect("mpp worst runs")).1
        });
        rows.push(Fig4Row {
            rho,
            no,
            n_estimated: auto.stats.n_used,
            t_mppm,
            t_worst,
            t_best,
            frequent: auto.frequent.len(),
        });
    }
    rows
}

/// Print Figure 4(a): MPPm vs MPP (worst case).
pub fn run_fig4a(seq_len: usize, rhos_percent: &[f64]) {
    println!("Figure 4(a) — MPPm vs MPP(worst, n = l1); L = {seq_len}, gap [9,12], m = 10\n");
    let rows = sweep(seq_len, true, rhos_percent);
    let mut table = TextTable::new(&[
        "rho",
        "no(rho)",
        "n(MPPm)",
        "MPPm (s)",
        "MPP worst (s)",
        "speedup",
        "patterns",
    ]);
    for r in &rows {
        let worst = r.t_worst.expect("fig4a measures the worst case");
        table.row(&[
            pct(r.rho),
            r.no.to_string(),
            r.n_estimated.to_string(),
            seconds(r.t_mppm),
            seconds(worst),
            format!(
                "{:.1}x",
                worst.as_secs_f64() / r.t_mppm.as_secs_f64().max(1e-9)
            ),
            r.frequent.to_string(),
        ]);
    }
    print!("{}", table.render());
}

/// Print Figure 4(b): MPPm vs MPP (best case).
pub fn run_fig4b(seq_len: usize, rhos_percent: &[f64]) {
    println!("Figure 4(b) — MPPm vs MPP(best, n = no(rho)); L = {seq_len}, gap [9,12], m = 10\n");
    let rows = sweep(seq_len, false, rhos_percent);
    let mut table = TextTable::new(&[
        "rho",
        "no(rho)",
        "n(MPPm)",
        "MPPm (s)",
        "MPP best (s)",
        "slowdown",
        "patterns",
    ]);
    for r in &rows {
        table.row(&[
            pct(r.rho),
            r.no.to_string(),
            r.n_estimated.to_string(),
            seconds(r.t_mppm),
            seconds(r.t_best),
            format!(
                "{:.1}x",
                r.t_mppm.as_secs_f64() / r.t_best.as_secs_f64().max(1e-9)
            ),
            r.frequent.to_string(),
        ]);
    }
    print!("{}", table.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shapes_match_paper() {
        // One cheap point suffices for the structural assertions; the
        // full sweep runs from the harness.
        let rows = sweep(600, true, &[0.003, 0.005]);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            // MPPm must estimate at least the true longest length
            // (soundness of Theorem 2) and at most l1.
            assert!(r.n_estimated >= r.no);
            assert!(r.no >= 3);
        }
        // Larger rho → no more patterns.
        assert!(rows[1].frequent <= rows[0].frequent);
    }
}
