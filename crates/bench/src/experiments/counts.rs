//! Section 4.1's worked numbers: `l1`, `l2`, the `N_l` table, the
//! N_10 ≈ 235 million example, and a Theorem 3 spot check.

use super::paper;
use perigap_analysis::report::TextTable;
use perigap_core::{GapRequirement, OffsetCounts};

/// Print the counting table for the paper's standard configuration.
pub fn run(seq_len: usize) {
    let gap = GapRequirement::new(paper::GAP_MIN, paper::GAP_MAX).expect("static gap");
    let counts = OffsetCounts::new(seq_len, gap);
    println!(
        "Offset-sequence counts; L = {seq_len}, gap [9,12] (W = {}), l1 = {}, l2 = {}\n",
        gap.flexibility(),
        counts.l1(),
        counts.l2()
    );
    let mut table = TextTable::new(&["l", "N_l (exact)", "ln N_l"]);
    for l in 1..=15 {
        table.row(&[
            l.to_string(),
            counts.n(l).to_string(),
            format!("{:.2}", counts.ln_n(l)),
        ]);
    }
    // The boundary band and the far end.
    for l in [counts.l1(), counts.l1() + 1, counts.l2(), counts.l2() + 1] {
        table.row(&[
            l.to_string(),
            counts.n(l).to_string(),
            format!("{:.2}", counts.ln_n(l)),
        ]);
    }
    print!("{}", table.render());

    if seq_len == 1000 {
        println!(
            "\nPaper check (Section 4.1): N_10 = {} (\"about 235 million\")",
            counts.n(10)
        );
    }
    let (sum, expected) = counts.theorem3_sum(10);
    println!(
        "Theorem 3 at l = 10: sum f(l,i) = {sum}, (l-1)/2*(W-1)*W^(l-1) = {expected} -> {}",
        if sum == expected { "OK" } else { "MISMATCH" }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_n10() {
        let gap = GapRequirement::new(9, 12).unwrap();
        let counts = OffsetCounts::new(1000, gap);
        assert_eq!(counts.n(10).to_string(), "235012096");
    }
}
