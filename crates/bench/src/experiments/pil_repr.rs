//! `pil-repr` — the adaptive dense/sparse PIL layout section.
//!
//! Three measurements (the first two also feed the `pil_repr` section
//! of `BENCH_mining.json`; the third feeds `dfs_sweep`):
//!
//! 1. **occupancy kernel sweep**: one suffix list at a controlled
//!    occupancy (entries / occupied span) of 1%, 10%, 50% and 90%,
//!    joined by eight prefix lists under the sparse sliding-window
//!    merge, the dense prefix-sum probe, and the `Auto` policy
//!    dispatch. The dense build is paid once per generation and
//!    amortised over the eight prefixes, exactly as [`ReprCache`]
//!    reuses it inside the engines. This is where the acceptance bars
//!    live: `auto` must ride the dense kernel at ≥ 50% occupancy and
//!    stay within noise of sparse at ≤ 5%.
//! 2. **mining invariance + histogram**: a full `mpp_parallel` run per
//!    `--pil-repr` mode with the chosen-representation histogram (the
//!    process-wide counter delta) and a **hard assert** that the
//!    frequent set and every stats counter are identical across modes
//!    — the CI representation-invariance gate.
//! 3. **DFS-first mppm sweep** (ROADMAP): `mppm` vs `mppm_dfs` across
//!    the Figure 4–8 axes (ρs, n, W, N, L), wall-clock plus the
//!    deterministic peak live-arena bytes, recording the memory/time
//!    trade-off of depth-first mining under the λ′ bound.

use super::{paper, pct, timed_median};
use crate::data::{ax_fragment, scaling_sequence};
use perigap_analysis::report::{seconds, TextTable};
use perigap_core::adaptive::{repr_stats, ReprCache};
use perigap_core::dfs::mpp_dfs_traced;
use perigap_core::mppm::{mppm_dfs_traced, mppm_traced};
use perigap_core::parallel::{mpp_parallel, mpp_parallel_traced};
use perigap_core::pil::{
    join_dense_into, join_multi_into, DensePil, JoinCounters, MultiJoinScratch,
};
use perigap_core::trace::MetricsObserver;
use perigap_core::{GapRequirement, MineOutcome, PilRepr, ReprPolicy};
use std::fmt::Write as _;
use std::time::Duration;

/// The ISSUE-1/3 acceptance mining configuration (matches `bench`).
const GAP: (usize, usize) = (0, 9);
const RHO: f64 = 0.003e-2;
const N: usize = 8;
const THREADS: usize = 8;
/// Threads for the BFS-vs-DFS sweep (the ISSUE-3 acceptance config).
const ENGINE_THREADS: usize = 4;

/// Prefixes joined against each suffix: the dense build amortisation
/// factor, mirroring the per-generation reuse inside the engines.
const PREFIXES: usize = 8;

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// A synthetic PIL at a controlled occupancy: `round(span · occ)`
/// entries spread evenly over `span` offsets, with small deterministic
/// counts (no `u64` saturation, so [`DensePil::build`] always
/// succeeds).
fn occupancy_entries(span: usize, occ: f64, salt: u64) -> Vec<(u32, u64)> {
    let k = ((span as f64 * occ).round() as usize).clamp(2, span);
    let stride = span as f64 / k as f64;
    (0..k)
        .map(|i| {
            let off = (i as f64 * stride) as u32;
            let count = 1 + (i as u64).wrapping_mul(salt) % 13;
            (off, count)
        })
        .collect()
}

/// One occupancy row of the kernel sweep.
struct OccupancyRow {
    occ_pct: f64,
    entries: usize,
    span: usize,
    auto_chose_dense: bool,
    sparse: Duration,
    dense: Duration,
    auto: Duration,
}

/// The occupancy kernel sweep. Prints the table and returns the JSON
/// fragment for the `pil_repr.occupancy` array.
pub fn occupancy_section(quick: bool) -> String {
    let gap = GapRequirement::new(GAP.0, GAP.1).expect("static gap");
    let span: usize = if quick { 4_096 } else { 16_384 };
    let rounds = if quick { 5 } else { 30 };
    let reps = if quick { 2 } else { 3 };
    println!(
        "pil-repr: occupancy kernel sweep, span {span}, {PREFIXES} prefixes x {rounds} rounds, gap [{}, {}]",
        GAP.0, GAP.1
    );

    let policy = ReprPolicy::default();
    let mut rows = Vec::new();
    for &occ in &[0.01, 0.10, 0.50, 0.90] {
        let suffix = occupancy_entries(span, occ, 11);
        let prefixes: Vec<Vec<(u32, u64)>> = (0..PREFIXES)
            .map(|r| occupancy_entries(span, occ, 3 + 2 * r as u64))
            .collect();
        let mut scratch = MultiJoinScratch::default();
        let mut outs: Vec<Vec<(u32, u64)>> = vec![Vec::new()];
        let mut dout: Vec<(u32, u64)> = Vec::new();
        let mut jc = JoinCounters::default();

        // Cross-check once per occupancy: the dense probe must match
        // the sparse merge exactly before any timing is trusted.
        join_multi_into(
            &prefixes[0],
            &[&suffix],
            gap,
            &mut outs[..1],
            &mut scratch,
            &mut jc,
        );
        let check = DensePil::build(&suffix).expect("bench counts fit u64");
        join_dense_into(&prefixes[0], &check, gap, &mut dout, &mut jc);
        assert_eq!(outs[0], dout, "kernel mismatch at occupancy {occ}");

        let (_, sparse) = timed_median(reps, || {
            for _ in 0..rounds {
                for p in &prefixes {
                    join_multi_into(p, &[&suffix], gap, &mut outs[..1], &mut scratch, &mut jc);
                    std::hint::black_box(&outs);
                }
            }
        });
        let (_, dense) = timed_median(reps, || {
            for _ in 0..rounds {
                let d = DensePil::build(&suffix).expect("bench counts fit u64");
                for p in &prefixes {
                    dout.clear();
                    join_dense_into(p, &d, gap, &mut dout, &mut jc);
                    std::hint::black_box(&dout);
                }
            }
        });
        // Decide once per suffix per generation and then run the pure
        // path — the same partition-then-phase structure the engines
        // use, so the sparse branch is the sparse loop plus exactly
        // one occupancy test per generation.
        let mut cache = ReprCache::new(policy);
        let (_, auto) = timed_median(reps, || {
            for _ in 0..rounds {
                cache.begin(1);
                if cache.decide(0, &suffix) {
                    let d = cache.get(0).expect("decided dense");
                    for p in &prefixes {
                        dout.clear();
                        join_dense_into(p, d, gap, &mut dout, &mut jc);
                        std::hint::black_box(&dout);
                    }
                } else {
                    for p in &prefixes {
                        join_multi_into(p, &[&suffix], gap, &mut outs[..1], &mut scratch, &mut jc);
                        std::hint::black_box(&outs);
                    }
                }
            }
        });
        rows.push(OccupancyRow {
            occ_pct: occ * 100.0,
            entries: suffix.len(),
            span,
            auto_chose_dense: policy.wants_dense(&suffix),
            sparse,
            dense,
            auto,
        });
    }

    let mut table = TextTable::new(&[
        "occupancy",
        "entries",
        "auto picks",
        "sparse (ms)",
        "dense (ms)",
        "auto (ms)",
        "dense vs sparse",
        "auto vs sparse",
    ]);
    for r in &rows {
        table.row(&[
            format!("{:.0}%", r.occ_pct),
            r.entries.to_string(),
            if r.auto_chose_dense {
                "dense"
            } else {
                "sparse"
            }
            .to_string(),
            format!("{:.3}", ms(r.sparse)),
            format!("{:.3}", ms(r.dense)),
            format!("{:.3}", ms(r.auto)),
            format!("{:.2}x", r.sparse.as_secs_f64() / r.dense.as_secs_f64()),
            format!("{:.2}x", r.sparse.as_secs_f64() / r.auto.as_secs_f64()),
        ]);
    }
    print!("{}", table.render());

    // The acceptance bars: auto ≥ 1.5x on the dense regime (≥ 50%
    // occupancy), within 5% of sparse on the sparse regime (≤ 5%).
    // Reported, not asserted — wall-clock bars belong to the recorded
    // full run, not to whatever loaded machine runs the smoke.
    let dense_regime = rows
        .iter()
        .filter(|r| r.occ_pct >= 50.0)
        .map(|r| r.sparse.as_secs_f64() / r.auto.as_secs_f64())
        .fold(f64::INFINITY, f64::min);
    let sparse_regime = rows
        .iter()
        .filter(|r| r.occ_pct <= 5.0)
        .map(|r| (r.auto.as_secs_f64() / r.sparse.as_secs_f64() - 1.0) * 100.0)
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "  acceptance: dense-regime auto speedup >= {dense_regime:.2}x (bar 1.5x) | sparse-regime auto penalty {sparse_regime:+.1}% (bar +5%)"
    );

    let mut s = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(
            s,
            "{{\"occupancy_pct\": {}, \"entries\": {}, \"span\": {}, \"rounds\": {rounds}, \"prefixes\": {PREFIXES}, \"auto_chose_dense\": {}, \"sparse_ms\": {:.3}, \"dense_ms\": {:.3}, \"auto_ms\": {:.3}, \"dense_speedup\": {:.3}, \"auto_speedup\": {:.3}}}",
            r.occ_pct,
            r.entries,
            r.span,
            r.auto_chose_dense,
            ms(r.sparse),
            ms(r.dense),
            ms(r.auto),
            r.sparse.as_secs_f64() / r.dense.as_secs_f64(),
            r.sparse.as_secs_f64() / r.auto.as_secs_f64(),
        );
    }
    s.push(']');
    s
}

/// Assert that two mining outcomes are bit-identical in everything the
/// representation choice must not affect: the frequent set and every
/// stats counter (wall-clock fields excepted).
fn assert_outcomes_identical(reference: &MineOutcome, other: &MineOutcome, label: &str) {
    assert_eq!(
        reference.frequent, other.frequent,
        "{label}: frequent sets differ from the sparse reference"
    );
    assert_eq!(
        reference.stats.n_used, other.stats.n_used,
        "{label}: n_used"
    );
    assert_eq!(reference.stats.em, other.stats.em, "{label}: em");
    assert_eq!(
        reference.stats.support_saturated, other.stats.support_saturated,
        "{label}: support_saturated"
    );
    assert_eq!(
        reference.stats.levels.len(),
        other.stats.levels.len(),
        "{label}: level count"
    );
    for (a, b) in reference.stats.levels.iter().zip(&other.stats.levels) {
        assert!(
            a.level == b.level
                && a.candidates == b.candidates
                && a.frequent == b.frequent
                && a.extended == b.extended,
            "{label}: level {} counters differ",
            a.level
        );
    }
}

/// The mining invariance + histogram section. Runs `mpp_parallel` once
/// per representation mode (always including the sparse reference),
/// hard-asserts outcome identity, and reports the chosen-representation
/// histogram from the process counters. Returns the JSON fragment for
/// the `pil_repr.mining` object.
pub fn mining_section(quick: bool, forced: Option<PilRepr>) -> String {
    let gap = GapRequirement::new(GAP.0, GAP.1).expect("static gap");
    let len = if quick { 5_000 } else { 50_000 };
    let seq = scaling_sequence(len);
    let modes: Vec<PilRepr> = match forced {
        Some(PilRepr::Sparse) | None => vec![PilRepr::Sparse, PilRepr::Dense, PilRepr::Auto],
        Some(m) => vec![PilRepr::Sparse, m],
    };
    println!(
        "pil-repr: mining invariance, {THREADS} threads, L = {len}, rho = {RHO}, modes {:?}",
        modes.iter().map(PilRepr::to_string).collect::<Vec<_>>()
    );

    let mut reference: Option<MineOutcome> = None;
    let mut table = TextTable::new(&["mode", "time (s)", "dense", "sparse", "fallbacks"]);
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"length\": {len}, \"threads\": {THREADS}, \"modes\": ["
    );
    for (i, &mode) in modes.iter().enumerate() {
        let config = perigap_core::mpp::MppConfig {
            pil_repr: ReprPolicy::of(mode),
            ..Default::default()
        };
        let before = repr_stats();
        let (outcome, wall) = timed_median(1, || {
            mpp_parallel(&seq, gap, RHO, N, config.clone(), THREADS).expect("mining runs")
        });
        let hist = repr_stats().since(before);
        match &reference {
            None => reference = Some(outcome),
            Some(r) => assert_outcomes_identical(r, &outcome, &format!("--pil-repr {mode}")),
        }
        table.row(&[
            mode.to_string(),
            seconds(wall),
            hist.dense.to_string(),
            hist.sparse.to_string(),
            hist.fallbacks.to_string(),
        ]);
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(
            s,
            "{{\"mode\": \"{mode}\", \"wall_ms\": {:.3}, \"dense\": {}, \"sparse\": {}, \"fallbacks\": {}}}",
            ms(wall),
            hist.dense,
            hist.sparse,
            hist.fallbacks
        );
    }
    let frequent = reference.as_ref().map_or(0, |r| r.frequent.len());
    let _ = write!(s, "], \"frequent\": {frequent}, \"invariant\": true}}");
    print!("{}", table.render());
    println!("  invariance: frequent set + stats counters identical across all modes ({frequent} patterns)");
    s
}

/// One point of a BFS-vs-DFS axis sweep.
struct SweepPoint {
    x: String,
    bfs: Duration,
    dfs: Duration,
    bfs_peak: usize,
    dfs_peak: usize,
    patterns: usize,
}

/// Run one axis point: median wall for both engines plus one traced
/// run each for the deterministic peak-arena gauge, with a hard check
/// that both engines find the same frequent set.
fn sweep_point(
    reps: usize,
    x: String,
    mut bfs: impl FnMut(&mut MetricsObserver) -> MineOutcome,
    mut dfs: impl FnMut(&mut MetricsObserver) -> MineOutcome,
) -> SweepPoint {
    let (_, bfs_wall) = timed_median(reps, || bfs(&mut MetricsObserver::new()));
    let (_, dfs_wall) = timed_median(reps, || dfs(&mut MetricsObserver::new()));
    let mut bm = MetricsObserver::new();
    let b = bfs(&mut bm);
    let mut dm = MetricsObserver::new();
    let d = dfs(&mut dm);
    assert_eq!(b.frequent, d.frequent, "engines disagree at {x}");
    SweepPoint {
        x,
        bfs: bfs_wall,
        dfs: dfs_wall,
        bfs_peak: bm
            .complete
            .as_ref()
            .expect("traced run completes")
            .peak_arena_bytes,
        dfs_peak: dm
            .complete
            .as_ref()
            .expect("traced run completes")
            .peak_arena_bytes,
        patterns: d.frequent.len(),
    }
}

/// Render one axis of the sweep as a table plus its JSON fragment.
fn render_axis(name: &str, xlabel: &str, points: &[SweepPoint]) -> String {
    let mut table = TextTable::new(&[
        xlabel,
        "bfs (s)",
        "dfs (s)",
        "wall ratio",
        "bfs peak (B)",
        "dfs peak (B)",
        "peak ratio",
    ]);
    for p in points {
        table.row(&[
            p.x.clone(),
            seconds(p.bfs),
            seconds(p.dfs),
            format!("{:.2}x", p.bfs.as_secs_f64() / p.dfs.as_secs_f64()),
            p.bfs_peak.to_string(),
            p.dfs_peak.to_string(),
            format!("{:.2}x", p.bfs_peak as f64 / p.dfs_peak.max(1) as f64),
        ]);
    }
    println!("pil-repr: dfs sweep axis {name}");
    print!("{}", table.render());

    let mut s = String::new();
    let _ = write!(s, "{{\"axis\": \"{name}\", \"points\": [");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(
            s,
            "{{\"x\": \"{}\", \"bfs_ms\": {:.3}, \"dfs_ms\": {:.3}, \"bfs_peak_arena_bytes\": {}, \"dfs_peak_arena_bytes\": {}, \"patterns\": {}}}",
            p.x,
            ms(p.bfs),
            ms(p.dfs),
            p.bfs_peak,
            p.dfs_peak,
            p.patterns
        );
    }
    s.push_str("]}");
    s
}

/// The DFS-first mppm sweep (ROADMAP item): `mppm` vs `mppm_dfs` (and
/// `mpp_parallel` vs `mpp_dfs` on the Figure 5 axis) across the
/// Figure 4–8 axes. Returns the JSON fragment for the `dfs_sweep`
/// array.
pub fn dfs_sweep(quick: bool) -> String {
    let reps = if quick { 1 } else { 3 };
    let seq_len = if quick { 600 } else { paper::SEQ_LEN };
    let config = perigap_core::mpp::MppConfig::default();
    let paper_gap = GapRequirement::new(paper::GAP_MIN, paper::GAP_MAX).expect("static gap");
    println!(
        "pil-repr: dfs-first mppm sweep, {ENGINE_THREADS} threads, L = {seq_len}, reps {reps}"
    );
    let mut axes = Vec::new();

    // Figure 4 axis: ρs sweep, mppm at m = 10, gap [9, 12].
    let rhos: Vec<f64> = if quick {
        vec![0.003e-2, 0.005e-2]
    } else {
        paper::RHO_SWEEP_PERCENT.iter().map(|p| p * 1e-2).collect()
    };
    let seq = ax_fragment(seq_len);
    let points: Vec<SweepPoint> = rhos
        .iter()
        .map(|&rho| {
            sweep_point(
                reps,
                pct(rho),
                |o| {
                    mppm_traced(&seq, paper_gap, rho, paper::M, config.clone(), o)
                        .expect("mppm runs")
                },
                |o| {
                    mppm_dfs_traced(
                        &seq,
                        paper_gap,
                        rho,
                        paper::M,
                        config.clone(),
                        ENGINE_THREADS,
                        o,
                    )
                    .expect("mppm_dfs runs")
                },
            )
        })
        .collect();
    axes.push(render_axis("rho", "rho", &points));

    // Figure 5 axis: user input n, mpp engines, gap [9, 12].
    let ns: Vec<usize> = if quick {
        vec![10, 40]
    } else {
        vec![10, 20, 40, 77]
    };
    let points: Vec<SweepPoint> = ns
        .iter()
        .map(|&n| {
            sweep_point(
                reps,
                n.to_string(),
                |o| {
                    mpp_parallel_traced(
                        &seq,
                        paper_gap,
                        paper::RHO,
                        n,
                        config.clone(),
                        ENGINE_THREADS,
                        o,
                    )
                    .expect("mpp_parallel runs")
                },
                |o| {
                    mpp_dfs_traced(
                        &seq,
                        paper_gap,
                        paper::RHO,
                        n,
                        config.clone(),
                        ENGINE_THREADS,
                        o,
                    )
                    .expect("mpp_dfs runs")
                },
            )
        })
        .collect();
    axes.push(render_axis("n", "n", &points));

    // Figure 6 axis: gap flexibility W (gap [9, 8+W]), m = 8.
    let ws: Vec<usize> = if quick {
        vec![4, 6]
    } else {
        vec![4, 5, 6, 7, 8]
    };
    let points: Vec<SweepPoint> = ws
        .iter()
        .map(|&w| {
            let gap =
                GapRequirement::new(paper::GAP_MIN, paper::GAP_MIN + w - 1).expect("sweep gap");
            sweep_point(
                reps,
                format!("W={w}"),
                |o| mppm_traced(&seq, gap, paper::RHO, 8, config.clone(), o).expect("mppm runs"),
                |o| {
                    mppm_dfs_traced(&seq, gap, paper::RHO, 8, config.clone(), ENGINE_THREADS, o)
                        .expect("mppm_dfs runs")
                },
            )
        })
        .collect();
    axes.push(render_axis("W", "W", &points));

    // Figure 7 axis: minimum gap N (gap [N, N+3]), m = 8.
    let gap_mins: Vec<usize> = if quick {
        vec![8, 12]
    } else {
        vec![8, 9, 10, 11, 12]
    };
    let points: Vec<SweepPoint> = gap_mins
        .iter()
        .map(|&gmin| {
            let gap = GapRequirement::new(gmin, gmin + 3).expect("sweep gap");
            sweep_point(
                reps,
                format!("N={gmin}"),
                |o| mppm_traced(&seq, gap, paper::RHO, 8, config.clone(), o).expect("mppm runs"),
                |o| {
                    mppm_dfs_traced(&seq, gap, paper::RHO, 8, config.clone(), ENGINE_THREADS, o)
                        .expect("mppm_dfs runs")
                },
            )
        })
        .collect();
    axes.push(render_axis("gap_min", "N", &points));

    // Figure 8 axis: sequence length L, homogeneous family, m = 10.
    let lens: Vec<usize> = if quick {
        vec![1_000, 2_000]
    } else {
        vec![2_000, 4_000, 6_000, 8_000, 10_000]
    };
    let points: Vec<SweepPoint> = lens
        .iter()
        .map(|&len| {
            let seq = scaling_sequence(len);
            sweep_point(
                reps,
                len.to_string(),
                |o| {
                    mppm_traced(&seq, paper_gap, paper::RHO, paper::M, config.clone(), o)
                        .expect("mppm runs")
                },
                |o| {
                    mppm_dfs_traced(
                        &seq,
                        paper_gap,
                        paper::RHO,
                        paper::M,
                        config.clone(),
                        ENGINE_THREADS,
                        o,
                    )
                    .expect("mppm_dfs runs")
                },
            )
        })
        .collect();
    axes.push(render_axis("length", "L", &points));

    format!("[{}]", axes.join(", "))
}

/// Standalone entry point for `repro pil-repr [--pil-repr MODE]`: the
/// occupancy kernel sweep plus the mining invariance gate. The JSON
/// fragments are discarded here; `repro bench` embeds them in
/// `BENCH_mining.json`.
pub fn run(quick: bool, forced: Option<PilRepr>) {
    let _ = occupancy_section(quick);
    println!();
    let _ = mining_section(quick, forced);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_entries_are_sorted_unique_and_sized() {
        for &occ in &[0.01, 0.5, 0.9] {
            let e = occupancy_entries(2_000, occ, 7);
            assert!(e.windows(2).all(|w| w[0].0 < w[1].0), "occ {occ}");
            let want = (2_000.0 * occ).round() as usize;
            assert_eq!(e.len(), want.max(2));
            assert!(e.iter().all(|&(_, c)| c >= 1));
        }
    }

    #[test]
    fn occupancy_section_reports_all_rows() {
        let json = occupancy_section(true);
        assert!(json.contains("\"occupancy_pct\": 1"), "{json}");
        assert!(json.contains("\"occupancy_pct\": 90"), "{json}");
        assert!(json.contains("\"auto_chose_dense\": true"), "{json}");
        assert!(json.contains("\"auto_chose_dense\": false"), "{json}");
    }

    #[test]
    fn mining_section_holds_invariance() {
        let json = mining_section(true, None);
        assert!(json.contains("\"invariant\": true"), "{json}");
        assert!(json.contains("\"mode\": \"sparse\""), "{json}");
        assert!(json.contains("\"mode\": \"dense\""), "{json}");
        assert!(json.contains("\"mode\": \"auto\""), "{json}");
    }

    #[test]
    fn dfs_sweep_covers_every_axis() {
        let json = dfs_sweep(true);
        for axis in ["rho", "n", "W", "gap_min", "length"] {
            assert!(json.contains(&format!("\"axis\": \"{axis}\"")), "{json}");
        }
        assert!(json.contains("dfs_peak_arena_bytes"), "{json}");
    }
}
