//! One module per paper table/figure. Each `run` prints the
//! regenerated rows to stdout; the `repro` binary dispatches here.
//!
//! Absolute times will not match a 2005 testbed; the *shapes* are the
//! reproduction target — who wins, by what factor, where candidate
//! counts collapse. EXPERIMENTS.md records paper-vs-measured for each.

pub mod bench_mining;
pub mod casestudy;
pub mod counts;
pub mod extensions;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod pil_repr;
pub mod skew;
pub mod table2;
pub mod table3;

use std::time::{Duration, Instant};

/// The paper's standard experimental configuration (Section 6).
pub mod paper {
    /// Subject sequence length of most experiments.
    pub const SEQ_LEN: usize = 1_000;
    /// Minimum gap.
    pub const GAP_MIN: usize = 9;
    /// Maximum gap.
    pub const GAP_MAX: usize = 12;
    /// MPPm window parameter for Figures 4, 8 and Table 3.
    pub const M: usize = 10;
    /// Support threshold (0.003%).
    pub const RHO: f64 = 0.003e-2;
    /// The ρs sweep of Figure 4, in percent.
    pub const RHO_SWEEP_PERCENT: [f64; 8] =
        [0.0015, 0.002, 0.0025, 0.003, 0.0035, 0.004, 0.0045, 0.005];
}

/// Time a closure.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Time a closure `repeats` times and report the median duration with
/// the last result — the timing sweeps (Figures 5–8) measure effects
/// of 10–50%, which single-shot wall clocks would bury in noise.
pub fn timed_median<T>(repeats: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    assert!(repeats >= 1, "need at least one repetition");
    let mut times = Vec::with_capacity(repeats);
    let mut last = None;
    for _ in 0..repeats {
        let start = Instant::now();
        last = Some(f());
        times.push(start.elapsed());
    }
    times.sort();
    (last.expect("at least one run"), times[times.len() / 2])
}

/// Render a percentage like the paper's axis labels.
pub fn pct(rho: f64) -> String {
    format!("{:.4}%", rho * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats_paper_values() {
        assert_eq!(pct(0.00003), "0.0030%");
        assert_eq!(pct(0.000015), "0.0015%");
    }

    #[test]
    fn timed_returns_value() {
        let (v, d) = timed(|| 6 * 7);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }
}
