//! The Section 7 case study on synthetic genome panels.
//!
//! Paper protocol: segment each genome into 100 kb fragments, mine each
//! with gap [10,12] and ρs = 0.006%, and tabulate the composition of
//! the frequent length-8 patterns. Expected findings:
//!
//! * bacteria: on average ≈ 250 of the 256 A/T-only length-8 patterns
//!   frequent per fragment; only ≈ 3.9 of the 63,232 C/G-heavy ones;
//! * eukaryotes: A/T patterns still frequent, *plus* G-run patterns
//!   (e.g. `GGGGGGGG`) frequent in some fragments;
//! * self-repeating patterns (`ATATATATATA`-style) appear;
//! * some A/T patterns are ubiquitous (frequent in every fragment).
//!
//! `scale` shrinks genome/fragment sizes so the study runs in seconds
//! (scale 1.0 = the paper's 100 kb fragments).

use perigap_analysis::casestudy::{run_case_study, CaseStudyConfig, GenomeReport};
use perigap_analysis::composition::{class_totals, self_repeating};
use perigap_analysis::report::TextTable;
use perigap_seq::Alphabet;

use crate::data::{bacteria_panel, eukaryote_panel};

/// Run the case study at the given scale and print per-genome tables.
pub fn run(scale: f64) {
    let config = CaseStudyConfig::paper_scaled(scale);
    let genome_len = config.fragment_width * 4; // four fragments per genome
    println!(
        "Case study (Section 7) — fragments of {} bases, gap {}, rho = {:.4}%, focal length {}\n",
        config.fragment_width,
        config.gap,
        config.rho * 100.0,
        config.focal_length
    );
    let (at_total, one_total, many_total) = class_totals(config.focal_length as u32);
    println!(
        "Class sizes at length {}: {} A/T-only, {} one-C/G, {} many-C/G\n",
        config.focal_length, at_total, one_total, many_total
    );

    let mut reports: Vec<(&str, GenomeReport)> = Vec::new();
    for (name, genome) in bacteria_panel(genome_len) {
        let report = run_case_study(&name, &genome, &config).expect("case study runs");
        reports.push(("bacteria", report));
    }
    for (name, genome) in eukaryote_panel(genome_len) {
        let report = run_case_study(&name, &genome, &config).expect("case study runs");
        reports.push(("eukaryote", report));
    }

    let mut table = TextTable::new(&[
        "genome",
        "kind",
        "fragments",
        "mean A/T-only",
        "mean many-C/G",
        "ubiquitous A/T",
        "longest",
    ]);
    for (kind, report) in &reports {
        table.row(&[
            report.name.clone(),
            kind.to_string(),
            report.fragments.len().to_string(),
            format!("{:.1}", report.mean_at_only()),
            format!("{:.1}", report.mean_many_cg()),
            report
                .ubiquitous()
                .iter()
                .filter(|p| {
                    use perigap_analysis::composition::{classify, CompositionClass};
                    classify(p) == CompositionClass::AtOnly
                })
                .count()
                .to_string(),
            report.longest().to_string(),
        ]);
    }
    print!("{}", table.render());

    // Cross-kind exclusives: patterns in eukaryotes never seen in
    // bacteria (the paper's G-runs).
    let bac_all: std::collections::HashSet<_> = reports
        .iter()
        .filter(|(k, _)| *k == "bacteria")
        .flat_map(|(_, r)| r.fragments.iter())
        .flat_map(|f| f.focal_patterns.iter().cloned())
        .collect();
    let mut euk_only: Vec<String> = reports
        .iter()
        .filter(|(k, _)| *k == "eukaryote")
        .flat_map(|(_, r)| r.fragments.iter())
        .flat_map(|f| f.focal_patterns.iter())
        .filter(|p| !bac_all.contains(*p))
        .map(|p| p.display(&Alphabet::Dna))
        .collect();
    euk_only.sort();
    euk_only.dedup();
    println!(
        "\nEukaryote-only focal patterns ({}): {}",
        euk_only.len(),
        preview(&euk_only, 12)
    );

    // Self-repeating patterns, pooled.
    for (kind, report) in &reports {
        // Collapse each genome's outcomes into a representative list.
        let _ = kind;
        let mut reps: Vec<String> = report
            .fragments
            .iter()
            .flat_map(|f| f.focal_patterns.iter())
            .filter(|p| p.is_self_repeating())
            .map(|p| p.display(&Alphabet::Dna))
            .collect();
        reps.sort();
        reps.dedup();
        if !reps.is_empty() {
            println!("Self-repeating in {}: {}", report.name, preview(&reps, 6));
        }
    }
    let _ = self_repeating; // re-exported entry point; full lists via the API
}

fn preview(items: &[String], max: usize) -> String {
    if items.len() <= max {
        items.join(" ")
    } else {
        format!("{} … (+{})", items[..max].join(" "), items.len() - max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_study_shows_at_dominance() {
        // Tiny scale for CI speed: one bacterial genome.
        let config = CaseStudyConfig::paper_scaled(0.01); // 1 kb fragments
        let (name, genome) = crate::data::bacteria_panel(config.fragment_width * 2)
            .into_iter()
            .next()
            .unwrap();
        let report = run_case_study(&name, &genome, &config).unwrap();
        assert_eq!(report.fragments.len(), 2);
        let (at_total, _, many_total) = class_totals(config.focal_length as u32);
        let at_frac = report.mean_at_only() / at_total as f64;
        let cg_frac = report.mean_many_cg() / many_total as f64;
        assert!(
            at_frac >= cg_frac,
            "A/T class should dominate: {at_frac:.4} vs {cg_frac:.4}"
        );
    }
}
