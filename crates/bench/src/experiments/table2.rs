//! Table 2: the `K_r` walk-through on `S = ACGTCCGT`.
//!
//! Gap [1,2], m = 2. The paper's values are
//! `K = [2, 1, 2, 1, 0, 0, 0, 0]` with `e_m = 2`.

use perigap_analysis::report::TextTable;
use perigap_core::em::kr_table;
use perigap_core::GapRequirement;
use perigap_seq::Sequence;

/// The paper's example values.
pub const PAPER_KR: [u64; 8] = [2, 1, 2, 1, 0, 0, 0, 0];

/// Compute the table.
pub fn compute() -> (Vec<u64>, u64) {
    let s = Sequence::dna("ACGTCCGT").expect("static sequence");
    let gap = GapRequirement::new(1, 2).expect("static gap");
    kr_table(&s, gap, 2)
}

/// Print Table 2 with the paper's row for comparison.
pub fn run() {
    println!("Table 2 — K_r of S = ACGTCCGT, gap [1,2], m = 2\n");
    let (krs, em) = compute();
    let mut table = TextTable::new(&["r", "K_r (measured)", "K_r (paper)"]);
    for (i, (&got, &expected)) in krs.iter().zip(PAPER_KR.iter()).enumerate() {
        table.row(&[(i + 1).to_string(), got.to_string(), expected.to_string()]);
    }
    print!("{}", table.render());
    println!("\ne_m = {em} (paper: 2)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_exactly() {
        let (krs, em) = compute();
        assert_eq!(krs, PAPER_KR);
        assert_eq!(em, 2);
    }
}
