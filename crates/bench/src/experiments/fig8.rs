//! Figure 8: MPPm execution time vs subject sequence length `L`.
//!
//! Paper configuration: gap [9,12], m = 10, ρs = 0.003%, L from 1,000
//! to 10,000. Expected shape: linear scaling in L.

use super::{paper, timed_median};
use crate::data::scaling_sequence;
use perigap_analysis::report::{seconds, TextTable};
use perigap_core::mpp::MppConfig;
use perigap_core::mppm::mppm;
use perigap_core::GapRequirement;

/// One Figure 8 measurement.
pub struct Fig8Row {
    /// Sequence length.
    pub len: usize,
    /// Median MPPm time.
    pub time: std::time::Duration,
    /// Frequent patterns found.
    pub patterns: usize,
    /// MPPm's automatic n estimate (pruning strength diagnostic).
    pub n_used: usize,
}

/// Time MPPm for each sequence length.
pub fn sweep(lens: &[usize], m: usize) -> Vec<Fig8Row> {
    let gap = GapRequirement::new(paper::GAP_MIN, paper::GAP_MAX).expect("static gap");
    lens.iter()
        .map(|&len| {
            // The homogeneous family: feature density uniform in len, so
            // the expected cost is proportional to length (Figure 8's
            // claim), not to which planted features a prefix contains.
            let seq = scaling_sequence(len);
            let (outcome, t) = timed_median(3, || {
                mppm(&seq, gap, paper::RHO, m, MppConfig::default()).expect("mppm runs")
            });
            Fig8Row {
                len,
                time: t,
                patterns: outcome.frequent.len(),
                n_used: outcome.stats.n_used,
            }
        })
        .collect()
}

/// Print the Figure 8 table with a linearity diagnostic
/// (time per 1,000 characters).
pub fn run(lens: &[usize]) {
    println!("Figure 8 — MPPm time vs sequence length L; gap [9,12], m = 10, rho = 0.003%\n");
    let mut table = TextTable::new(&["L", "time (s)", "s per 1k chars", "patterns", "n(MPPm)"]);
    for row in sweep(lens, paper::M) {
        table.row(&[
            row.len.to_string(),
            seconds(row.time),
            format!("{:.3}", row.time.as_secs_f64() * 1000.0 / row.len as f64),
            row.patterns.to_string(),
            row.n_used.to_string(),
        ]);
    }
    print!("{}", table.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_multiple_lengths() {
        let rows = sweep(&[400, 800], 4);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len, 400);
        assert!(rows.iter().all(|r| r.n_used >= 3));
    }
}
