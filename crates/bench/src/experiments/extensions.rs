//! Extension demonstrations beyond the paper's evaluation:
//!
//! 1. the cross-window loss of the related-work windowed model
//!    (Section 2's "patterns that span multiple windows cannot be
//!    discovered", quantified);
//! 2. collection mining across the case-study bacteria panel;
//! 3. heterogeneous gap profiles (the introduction's general form).

use super::paper;
use crate::data::{ax_fragment, bacteria_panel};
use perigap_analysis::report::TextTable;
use perigap_core::mpp::MppConfig;
use perigap_core::mppm::mppm;
use perigap_core::multiseq::mine_collection;
use perigap_core::profile::{mine_with_profile, GapProfile};
use perigap_core::windowed::{cross_window_loss, windowed_mine};
use perigap_core::GapRequirement;
use perigap_seq::Alphabet;

/// Run all three demonstrations.
pub fn run(seq_len: usize) {
    let gap = GapRequirement::new(paper::GAP_MIN, paper::GAP_MAX).expect("static gap");
    let seq = ax_fragment(seq_len);

    // 1. Windowed-model loss. The windowed model's binary per-window
    // occurrence is so unselective that mining it deep explodes (its
    // Apriori property prunes almost nothing at genomic thresholds), so
    // the comparison is run at lengths ≤ 6; longer reference patterns
    // are counted as structurally lost whenever their minimum span
    // exceeds the window.
    println!("Extension 1 — cross-window loss (related-work model, Section 2)\n");
    const CMP_LEN: usize = 6;
    let reference = mppm(&seq, gap, paper::RHO, paper::M, MppConfig::default()).expect("runs");
    let short_ref: Vec<_> = reference
        .frequent
        .iter()
        .filter(|f| f.len() <= CMP_LEN)
        .collect();
    let mut table = TextTable::new(&[
        "window",
        "visible (len<=6)",
        "lost (len<=6)",
        "structurally lost (span > window)",
    ]);
    for window in [60usize, 120, 250] {
        let windowed = windowed_mine(
            &seq,
            gap,
            window,
            2,
            MppConfig {
                max_level: Some(CMP_LEN),
                ..MppConfig::default()
            },
        )
        .expect("runs");
        let lost_short = short_ref
            .iter()
            .filter(|f| windowed.get(&f.pattern).is_none())
            .count();
        let structural = reference
            .frequent
            .iter()
            .filter(|f| gap.min_span(f.len()) > window)
            .count();
        table.row(&[
            window.to_string(),
            windowed.patterns.len().to_string(),
            format!("{} / {}", lost_short, short_ref.len()),
            format!("{} / {}", structural, reference.frequent.len()),
        ]);
    }
    print!("{}", table.render());
    println!(
        "(whole-sequence model: {} patterns, longest {}; minspan({}) = {})\n",
        reference.frequent.len(),
        reference.longest_len(),
        reference.longest_len(),
        gap.min_span(reference.longest_len())
    );
    let _ = cross_window_loss; // full-set variant available via the API

    // 2. Collection mining over the bacteria panel.
    println!("Extension 2 — collection mining (frequent in every genome)\n");
    let genomes: Vec<_> = bacteria_panel(seq_len.max(2_000))
        .into_iter()
        .map(|(_, g)| g)
        .collect();
    let study_gap = GapRequirement::new(10, 12).expect("static gap");
    let collection = mine_collection(
        &genomes,
        study_gap,
        0.00006,
        genomes.len(),
        12,
        MppConfig::default(),
    )
    .expect("runs");
    println!(
        "{} patterns frequent in all {} bacterial genomes (longest = {})",
        collection.patterns.len(),
        genomes.len(),
        collection.longest_len()
    );
    let at_only = collection
        .patterns
        .iter()
        .filter(|p| p.pattern.codes().iter().all(|&c| c == 0 || c == 3))
        .count();
    println!("{at_only} of them are A/T-only — the case-study signal, cross-genome\n");

    // 3. Heterogeneous gap profile.
    println!("Extension 3 — per-step gap profile (general form from Section 1)\n");
    let profile = GapProfile::new(vec![
        GapRequirement::new(9, 12).expect("static"),
        GapRequirement::new(9, 12).expect("static"),
        GapRequirement::new(20, 26).expect("static"), // a skipped period
        GapRequirement::new(9, 12).expect("static"),
    ])
    .expect("non-empty profile");
    let mined = mine_with_profile(&seq, &profile, paper::RHO, 5, 3).expect("runs");
    println!(
        "profile [9,12] [9,12] [20,26] [9,12]: {} frequent patterns, longest = {}",
        mined.frequent.len(),
        mined.longest_len()
    );
    for f in mined.frequent.iter().rev().take(5) {
        println!(
            "  {:<6} sup = {:<7} ratio = {:.6}",
            f.pattern.display(&Alphabet::Dna),
            f.support,
            f.ratio
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extensions_run_on_small_input() {
        // Smoke coverage: the full run prints; here just exercise the
        // pieces cheaply.
        let gap = GapRequirement::new(9, 12).unwrap();
        let seq = ax_fragment(400);
        let reference = mppm(&seq, gap, paper::RHO, 4, MppConfig::default()).unwrap();
        let windowed = windowed_mine(
            &seq,
            gap,
            60,
            2,
            MppConfig {
                max_level: Some(4),
                ..MppConfig::default()
            },
        )
        .unwrap();
        let lost = cross_window_loss(&reference, &windowed);
        assert!(lost.len() <= reference.frequent.len());
    }
}
