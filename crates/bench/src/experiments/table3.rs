//! Table 3: candidates counted per level by the four miners.
//!
//! Paper configuration: L = 1000, gap [9,12], ρs = 0.003%, m = 10.
//! Columns: the enumeration baseline (4^i analytically — actually
//! running it is the point of the table: it cannot), MPP worst case
//! (n = l1), MPPm, and MPP best case (n = no(ρs)). Expected shape:
//! enumeration explodes; MPP(worst) peaks in the hundreds of thousands
//! around level 9–10; MPPm collapses earlier; MPP(best) is smallest.

use super::paper;
use crate::data::ax_fragment;
use perigap_analysis::report::TextTable;
use perigap_core::mpp::{mpp, MppConfig};
use perigap_core::mppm::mppm;
use perigap_core::result::MineStats;
use perigap_core::GapRequirement;
use perigap_math::combinatorics::strings_of_length;

/// The per-level candidate counts of one run, indexed by level.
fn counts_by_level(stats: &MineStats) -> std::collections::HashMap<usize, u128> {
    stats
        .levels
        .iter()
        .map(|l| (l.level, l.candidates))
        .collect()
}

/// Compute and print Table 3.
pub fn run(seq_len: usize) {
    println!("Table 3 — candidates per level; L = {seq_len}, gap [9,12], rho = 0.003%, m = 10\n");
    let seq = ax_fragment(seq_len);
    let gap = GapRequirement::new(paper::GAP_MIN, paper::GAP_MAX).expect("static gap");
    let config = MppConfig::default();

    let auto = mppm(&seq, gap, paper::RHO, paper::M, config.clone()).expect("mppm runs");
    let no = auto.longest_len().max(3);
    let best = mpp(&seq, gap, paper::RHO, no, config.clone()).expect("mpp best runs");
    let worst =
        mpp(&seq, gap, paper::RHO, gap.l1(seq.len()), config.clone()).expect("mpp worst runs");

    let auto_counts = counts_by_level(&auto.stats);
    let best_counts = counts_by_level(&best.stats);
    let worst_counts = counts_by_level(&worst.stats);
    let max_level = worst
        .stats
        .levels
        .iter()
        .chain(&auto.stats.levels)
        .chain(&best.stats.levels)
        .map(|l| l.level)
        .max()
        .unwrap_or(3);

    let mut table = TextTable::new(&["level", "Enumeration", "MPP (worst)", "MPPm", "MPP (best)"]);
    let fmt = |v: Option<&u128>| v.map_or("-".to_string(), |c| c.to_string());
    for level in 3..=max_level {
        let enumeration = strings_of_length(4, level as u32);
        table.row(&[
            format!("C{level}"),
            enumeration.to_string(),
            fmt(worst_counts.get(&level)),
            fmt(auto_counts.get(&level)),
            fmt(best_counts.get(&level)),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nno(rho) = {no}; MPPm estimated n = {}; MPP worst used n = {}",
        auto.stats.n_used, worst.stats.n_used
    );
    println!(
        "Totals: MPP(worst) {} / MPPm {} / MPP(best) {} candidates",
        worst.stats.total_candidates(),
        auto.stats.total_candidates(),
        best.stats.total_candidates()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orderings_match_paper() {
        // Small instance: the orderings (best ≤ MPPm ≤ worst in total
        // candidates) must hold, as in Table 3.
        let seq = ax_fragment(500);
        let gap = GapRequirement::new(paper::GAP_MIN, paper::GAP_MAX).unwrap();
        let config = MppConfig::default();
        let auto = mppm(&seq, gap, paper::RHO, 6, config.clone()).unwrap();
        let no = auto.longest_len().max(3);
        let best = mpp(&seq, gap, paper::RHO, no, config.clone()).unwrap();
        let worst = mpp(&seq, gap, paper::RHO, gap.l1(500), config.clone()).unwrap();
        assert!(best.stats.total_candidates() <= auto.stats.total_candidates());
        assert!(auto.stats.total_candidates() <= worst.stats.total_candidates());
        // All three find the same frequent set.
        assert_eq!(best.frequent.len(), worst.frequent.len());
        assert_eq!(auto.frequent.len(), worst.frequent.len());
    }
}
