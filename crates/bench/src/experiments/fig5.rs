//! Figure 5: MPP execution time as a function of the user input `n`.
//!
//! Paper configuration: L = 1000, gap [9,12], ρs = 0.003%. Expected
//! shape: time grows with `n` (worse estimates prune less); an
//! under-estimate (`n` below `no(ρs)`) is fastest of all but forfeits
//! the completeness guarantee. The `--adaptive` variant additionally
//! reports the Section 6 adaptive-n strategy.

use super::{paper, timed_median};
use crate::data::ax_fragment;
use perigap_analysis::report::{seconds, TextTable};
use perigap_core::adaptive::adaptive_mpp;
use perigap_core::mpp::{mpp, MppConfig};
use perigap_core::GapRequirement;

/// Time MPP for each `n` in `ns`; returns `(n, seconds, patterns,
/// longest)` rows.
pub fn sweep(seq_len: usize, ns: &[usize]) -> Vec<(usize, std::time::Duration, usize, usize)> {
    let seq = ax_fragment(seq_len);
    let gap = GapRequirement::new(paper::GAP_MIN, paper::GAP_MAX).expect("static gap");
    ns.iter()
        .map(|&n| {
            let (outcome, t) = timed_median(3, || {
                mpp(&seq, gap, paper::RHO, n, MppConfig::default()).expect("mpp runs")
            });
            (n, t, outcome.frequent.len(), outcome.longest_len())
        })
        .collect()
}

/// Print the Figure 5 table (optionally with the adaptive-n row).
pub fn run(seq_len: usize, ns: &[usize], adaptive: bool) {
    println!("Figure 5 — MPP time vs user input n; L = {seq_len}, gap [9,12], rho = 0.003%\n");
    let mut table = TextTable::new(&["n", "time (s)", "patterns", "longest"]);
    for (n, t, patterns, longest) in sweep(seq_len, ns) {
        table.row(&[
            n.to_string(),
            seconds(t),
            patterns.to_string(),
            longest.to_string(),
        ]);
    }
    print!("{}", table.render());

    if adaptive {
        let seq = ax_fragment(seq_len);
        let gap = GapRequirement::new(paper::GAP_MIN, paper::GAP_MAX).expect("static gap");
        let result =
            adaptive_mpp(&seq, gap, paper::RHO, 10, MppConfig::default()).expect("adaptive runs");
        println!(
            "\nAdaptive-n (Section 6): trajectory {:?}, total {} s, {} patterns, longest {}",
            result.n_trajectory,
            seconds(result.total_elapsed),
            result.outcome.frequent.len(),
            result.outcome.longest_len(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_n_never_finds_fewer_guaranteed_patterns() {
        let rows = sweep(600, &[5, 10, 25]);
        assert_eq!(rows.len(), 3);
        // Pattern counts are monotone in n up to the complete set.
        assert!(rows[0].2 <= rows[2].2);
    }
}
