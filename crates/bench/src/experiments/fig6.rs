//! Figure 6: MPPm execution time vs gap flexibility `W`.
//!
//! Paper configuration: L = 1000, N = 9 (so the gap is `[9, 8+W]`),
//! m = 8, ρs = 0.003%. Expected shape: time grows steeply with `W`,
//! because `N_l ∝ W^(l−1)` and the PIL lists fatten.

use super::{paper, timed_median};
use crate::data::ax_fragment;
use perigap_analysis::report::{seconds, TextTable};
use perigap_core::mpp::MppConfig;
use perigap_core::mppm::mppm;
use perigap_core::GapRequirement;

/// Time MPPm for each flexibility in `ws` (gap `[9, 8+W]`).
pub fn sweep(seq_len: usize, ws: &[usize], m: usize) -> Vec<(usize, std::time::Duration, usize)> {
    let seq = ax_fragment(seq_len);
    ws.iter()
        .map(|&w| {
            assert!(w >= 1, "flexibility must be at least 1");
            let gap = GapRequirement::new(paper::GAP_MIN, paper::GAP_MIN + w - 1)
                .expect("valid sweep gap");
            let (outcome, t) = timed_median(3, || {
                mppm(&seq, gap, paper::RHO, m, MppConfig::default()).expect("mppm runs")
            });
            (w, t, outcome.frequent.len())
        })
        .collect()
}

/// Print the Figure 6 table.
pub fn run(seq_len: usize, ws: &[usize]) {
    println!(
        "Figure 6 — MPPm time vs gap flexibility W; L = {seq_len}, N = 9, m = 8, rho = 0.003%\n"
    );
    let mut table = TextTable::new(&["W", "gap", "time (s)", "patterns"]);
    for (w, t, patterns) in sweep(seq_len, ws, 8) {
        table.row(&[
            w.to_string(),
            format!("[9, {}]", 8 + w),
            seconds(t),
            patterns.to_string(),
        ]);
    }
    print!("{}", table.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_requested_flexibilities() {
        let rows = sweep(400, &[2, 3], 4);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, 2);
        assert_eq!(rows[1].0, 3);
    }
}
