//! `bench` — the engine's perf baseline, written to `BENCH_mining.json`.
//!
//! Three measurements, all on deterministic synthetic DNA:
//!
//! 1. **level-3 seeding**: the seed byte-key `build_all`
//!    ([`perigap_core::reference::build_all_reference`]) vs the
//!    packed-key arena path behind [`Pil::build_all`], DNA, L = 100 000,
//!    gap `[0, 9]` — the ISSUE-1 acceptance config (≥ 2× required);
//! 2. **end-to-end mining**: `mpp_parallel` at 8 threads (persistent
//!    pool) vs the seed per-level-spawn miner
//!    ([`perigap_core::reference::mpp_reference`]) on the same config,
//!    with per-level wall-clock from both engines;
//! 3. **a size matrix**: per-level wall-clock of the new engine over a
//!    fixed seed/size grid, so later PRs can diff trajectories.
//!
//! The JSON is hand-rolled (the workspace carries no serde); the format
//! is flat enough to eyeball and to parse with anything.

use super::timed;
use crate::data::scaling_sequence;
use perigap_core::mpp::{mpp_traced, MppConfig};
use perigap_core::mppm::mppm_traced;
use perigap_core::parallel::mpp_parallel;
use perigap_core::pil::Pil;
use perigap_core::reference::{build_all_reference, mpp_reference};
use perigap_core::result::MineOutcome;
use perigap_core::trace::{LevelEvent, MetricsObserver};
use perigap_core::GapRequirement;
use std::fmt::Write as _;
use std::time::Duration;

/// The acceptance configuration: DNA, gap `[0, 9]`, ρs = 0.003%.
const GAP: (usize, usize) = (0, 9);
const RHO: f64 = 0.003e-2;
const N: usize = 8;
const THREADS: usize = 8;

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Best-of-`reps` wall-clock for `f`, discarding the results.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    let (mut out, mut best) = timed(&mut f);
    for _ in 1..reps {
        let (o, d) = timed(&mut f);
        if d < best {
            best = d;
            out = o;
        }
    }
    (out, best)
}

/// The pruning-power series (the paper's Figure 4/5 axes): per-level
/// candidate counts and what each bound discarded, from the observer's
/// level events.
fn pruning_json(levels: &[LevelEvent]) -> String {
    let mut s = String::from("[");
    for (i, l) in levels.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(
            s,
            "{{\"level\": {}, \"candidates\": {}, \"evaluated\": {}, \"kept\": {}, \"pruned_bound\": {}, \"frequent\": {}}}",
            l.level, l.candidates, l.evaluated, l.kept, l.pruned_bound, l.frequent
        );
    }
    s.push(']');
    s
}

fn level_json(outcome: &MineOutcome) -> String {
    let mut s = String::from("[");
    for (i, l) in outcome.stats.levels.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(
            s,
            "{{\"level\": {}, \"candidates\": {}, \"frequent\": {}, \"extended\": {}, \"elapsed_ms\": {:.3}}}",
            l.level,
            l.candidates,
            l.frequent,
            l.extended,
            ms(l.elapsed)
        );
    }
    s.push(']');
    s
}

/// Run the baseline and write `BENCH_mining.json` into the current
/// directory. `--quick` shrinks lengths so CI smoke runs stay fast;
/// the acceptance numbers come from the full run.
pub fn run(quick: bool) {
    let gap = GapRequirement::new(GAP.0, GAP.1).unwrap();
    let seed_len = if quick { 10_000 } else { 100_000 };
    let e2e_len = seed_len;
    let matrix_lens: &[usize] = if quick {
        &[5_000, 10_000]
    } else {
        &[25_000, 50_000, 100_000]
    };
    let reps = if quick { 2 } else { 3 };

    println!(
        "bench: level-3 seeding, DNA, L = {seed_len}, gap [{}, {}]",
        GAP.0, GAP.1
    );
    let seq = scaling_sequence(seed_len);
    let (reference_pils, seed_ref) = best_of(reps, || build_all_reference(&seq, gap, 3));
    let (packed_pils, seed_new) = best_of(reps, || Pil::build_all(&seq, gap, 3));
    assert_eq!(reference_pils.len(), packed_pils.len(), "engines disagree");
    let seed_speedup = seed_ref.as_secs_f64() / seed_new.as_secs_f64();
    println!(
        "  reference {:.1} ms | packed {:.1} ms | speedup {:.2}x",
        ms(seed_ref),
        ms(seed_new),
        seed_speedup
    );

    println!("bench: end-to-end mpp, {THREADS} threads, L = {e2e_len}, rho = {RHO}");
    let e2e_seq = scaling_sequence(e2e_len);
    let config = MppConfig::default();
    let (old_outcome, e2e_ref) = best_of(reps.min(2), || {
        mpp_reference(&e2e_seq, gap, RHO, N, config, THREADS).unwrap()
    });
    let (new_outcome, e2e_new) = best_of(reps.min(2), || {
        mpp_parallel(&e2e_seq, gap, RHO, N, config, THREADS).unwrap()
    });
    assert_eq!(
        old_outcome.frequent.len(),
        new_outcome.frequent.len(),
        "engines disagree"
    );
    let e2e_speedup = e2e_ref.as_secs_f64() / e2e_new.as_secs_f64();
    println!(
        "  reference {:.1} ms | engine {:.1} ms | speedup {:.2}x | {} frequent",
        ms(e2e_ref),
        ms(e2e_new),
        e2e_speedup,
        new_outcome.frequent.len()
    );

    let mut matrix = String::from("[");
    for (i, &len) in matrix_lens.iter().enumerate() {
        let seq = scaling_sequence(len);
        let (outcome, total) = timed(|| mpp_parallel(&seq, gap, RHO, N, config, THREADS).unwrap());
        println!(
            "bench: matrix L = {len}: {:.1} ms over {} levels",
            ms(total),
            outcome.stats.levels.len()
        );
        if i > 0 {
            matrix.push_str(", ");
        }
        let _ = write!(
            matrix,
            "{{\"length\": {}, \"gap\": [{}, {}], \"total_ms\": {:.3}, \"levels\": {}}}",
            len,
            GAP.0,
            GAP.1,
            ms(total),
            level_json(&outcome)
        );
    }
    matrix.push(']');

    // Pruning power (Figures 4–5): per-level candidate counts under the
    // Theorem 1 bound (mpp with fixed n, λ) vs the Theorem 2 bound
    // (mppm with e_m-estimated n, λ′). The frequent sets must agree —
    // the bounds only change how much survives *between* levels.
    let pp_len = if quick { 5_000 } else { 10_000 };
    let pp_m = 8;
    let pp_seq = scaling_sequence(pp_len);
    let mut lambda_metrics = MetricsObserver::new();
    let lambda = mpp_traced(&pp_seq, gap, RHO, N, config, &mut lambda_metrics).unwrap();
    let mut lambda_prime_metrics = MetricsObserver::new();
    let lambda_prime =
        mppm_traced(&pp_seq, gap, RHO, pp_m, config, &mut lambda_prime_metrics).unwrap();
    assert_eq!(
        lambda.frequent.len(),
        lambda_prime.frequent.len(),
        "λ and λ′ runs must find the same patterns"
    );
    let em = lambda_prime.stats.em.unwrap_or(0);
    println!(
        "bench: pruning power L = {pp_len}: λ kept {} vs λ′ kept {} (n {} vs {}, e_{pp_m} = {em})",
        lambda_metrics.levels.iter().map(|l| l.kept).sum::<usize>(),
        lambda_prime_metrics
            .levels
            .iter()
            .map(|l| l.kept)
            .sum::<usize>(),
        lambda.stats.n_used,
        lambda_prime.stats.n_used,
    );
    let pruning_power = format!(
        "{{\"length\": {pp_len}, \"m\": {pp_m}, \"em\": {em}, \"n_lambda\": {}, \"n_lambda_prime\": {}, \"frequent\": {},\n    \"lambda_levels\": {},\n    \"lambda_prime_levels\": {}}}",
        lambda.stats.n_used,
        lambda_prime.stats.n_used,
        lambda.frequent.len(),
        pruning_json(&lambda_metrics.levels),
        pruning_json(&lambda_prime_metrics.levels)
    );

    let json = format!(
        "{{\n  \"config\": {{\"alphabet\": \"DNA\", \"gap\": [{}, {}], \"rho\": {RHO}, \"n\": {N}, \"threads\": {THREADS}, \"quick\": {quick}}},\n  \"seeding_level3\": {{\"length\": {seed_len}, \"patterns\": {}, \"reference_ms\": {:.3}, \"packed_ms\": {:.3}, \"speedup\": {:.3}}},\n  \"end_to_end\": {{\"length\": {e2e_len}, \"frequent\": {}, \"reference_ms\": {:.3}, \"engine_ms\": {:.3}, \"speedup\": {:.3},\n    \"reference_levels\": {},\n    \"engine_levels\": {}}},\n  \"matrix\": {},\n  \"pruning_power\": {}\n}}\n",
        GAP.0,
        GAP.1,
        packed_pils.len(),
        ms(seed_ref),
        ms(seed_new),
        seed_speedup,
        new_outcome.frequent.len(),
        ms(e2e_ref),
        ms(e2e_new),
        e2e_speedup,
        level_json(&old_outcome),
        level_json(&new_outcome),
        matrix,
        pruning_power
    );
    std::fs::write("BENCH_mining.json", &json).expect("write BENCH_mining.json");
    println!("bench: wrote BENCH_mining.json");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_of_returns_a_result() {
        let (v, d) = best_of(3, || 41 + 1);
        assert_eq!(v, 42);
        assert!(d.as_nanos() < 1_000_000_000);
    }

    #[test]
    fn pruning_json_matches_engine_stats() {
        let seq = scaling_sequence(2_000);
        let gap = GapRequirement::new(0, 2).unwrap();
        let mut metrics = MetricsObserver::new();
        let outcome = mpp_traced(&seq, gap, 0.001, 5, MppConfig::default(), &mut metrics).unwrap();
        assert_eq!(metrics.levels.len(), outcome.stats.levels.len());
        let json = pruning_json(&metrics.levels);
        assert!(json.contains("\"pruned_bound\""), "{json}");
        assert!(json.contains("\"level\": 3"), "{json}");
    }

    #[test]
    fn level_json_shape() {
        let seq = scaling_sequence(2_000);
        let gap = GapRequirement::new(0, 2).unwrap();
        let outcome = mpp_parallel(&seq, gap, 0.001, 5, MppConfig::default(), 2).unwrap();
        let json = level_json(&outcome);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"level\": 3"));
        assert!(json.contains("elapsed_ms"));
    }
}
