//! `bench` — the engine's perf baseline, written to `BENCH_mining.json`.
//!
//! Three measurements, all on deterministic synthetic DNA:
//!
//! 1. **level-3 seeding**: the seed byte-key `build_all`
//!    ([`perigap_core::reference::build_all_reference`]) vs the
//!    packed-key arena path behind [`Pil::build_all`], DNA, L = 100 000,
//!    gap `[0, 9]` — the ISSUE-1 acceptance config (≥ 2× required);
//! 2. **end-to-end mining**: `mpp_parallel` at 8 threads (persistent
//!    pool) vs the seed per-level-spawn miner
//!    ([`perigap_core::reference::mpp_reference`]) on the same config,
//!    with per-level wall-clock from both engines;
//! 3. **a size matrix**: per-level wall-clock of the new engine over a
//!    fixed seed/size grid, so later PRs can diff trajectories;
//! 4. **engine comparison**: the breadth-first pooled engine vs the
//!    hybrid BFS→DFS engine ([`perigap_core::dfs`]) at 4 threads —
//!    wall-clock plus the deterministic peak live-arena bytes each
//!    engine reports, with a hard check that the DFS peak is strictly
//!    lower and all stats counters identical;
//! 5. **join kernel**: per-candidate [`Pil::join_checked`] calls vs the
//!    batched multi-suffix walk ([`join_multi_into`]) over the same
//!    shared-parent fan-out;
//! 6. **simd kernel**: the AVX2 dense window probe
//!    ([`perigap_core::kernel::join_dense_kernel`]) vs the scalar
//!    prefix-sum probe over identical windowed [`DensePil`]s, and the
//!    AVX2 level-3 seeding scan vs the scalar packed-key path —
//!    outputs cross-checked before any timing is trusted (≥ 2×
//!    required on AVX2 hardware);
//! 7. **single thread**: the serial packed engine vs the seed
//!    reference at one thread on L = 50 000 (the ISSUE-6 parity row),
//!    with per-level wall-clock from both so a late-level regression
//!    is visible individually;
//! 8. **query throughput**: the `pgmine serve` daemon over the mined
//!    pattern set, hammered by 1 / 4 / 16 concurrent clients with a
//!    mixed support/topk/prefix/overlap workload — queries/sec per
//!    client count, every response checked `"ok": true`;
//! 9. **top-k pruning**: `PruneMode::top_k(k)` vs a full mine +
//!    [`select_top_k`] post-filter at k ∈ {10, 100, 1000}, in both gap
//!    regimes — the flexible acceptance gap `[0, 9]` (`W = 10`:
//!    support is not anti-monotone, the floor gates emission only, so
//!    the honest win is modest) and a rigid gap `0:0` (`W = 1`: the
//!    rising floor prunes the search tree itself; ≥ 5× required at
//!    k = 100 on the full-size run). Every pruned outcome is checked
//!    bit-identical to the post-filter oracle before its timing is
//!    trusted.
//! 10. **corpus scale**: the mmap-backed sharded corpus miner
//!     ([`perigap_core::corpus::mine_corpus`]) under a DFS arena
//!     ceiling — cold wall-clock and peak RSS (`VmHWM`), then a
//!     controlled kill at ~50% of shards followed by a `--resume`, with
//!     the restart delta (resume / cold wall-clock) and checkpoint
//!     footprint; the resumed outcome is checked bit-identical to the
//!     cold mine before any timing is trusted.
//!
//! The JSON is hand-rolled (the workspace carries no serde); the format
//! is flat enough to eyeball and to parse with anything.

use super::timed;
use crate::data::scaling_sequence;
use perigap_core::dfs::{mpp_dfs, mpp_dfs_traced};
use perigap_core::kernel::{join_dense_kernel, seed_level3, simd_available, ResolvedKernel};
use perigap_core::mpp::{mpp, mpp_traced, MppConfig};
use perigap_core::mppm::mppm_traced;
use perigap_core::parallel::{mpp_parallel, mpp_parallel_traced};
use perigap_core::pil::{join_dense_into, DensePil};
use perigap_core::pil::{join_multi_into, JoinCounters, MultiJoinScratch, Pil};
use perigap_core::reference::{build_all_reference, mpp_reference};
use perigap_core::result::MineOutcome;
use perigap_core::trace::{LevelEvent, MetricsObserver};
use perigap_core::{select_top_k, GapRequirement, PruneMode};
use std::fmt::Write as _;
use std::time::Duration;

/// The acceptance configuration: DNA, gap `[0, 9]`, ρs = 0.003%.
const GAP: (usize, usize) = (0, 9);
const RHO: f64 = 0.003e-2;
const N: usize = 8;
const THREADS: usize = 8;

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Best-of-`reps` wall-clock for `f`, discarding the results.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    let (mut out, mut best) = timed(&mut f);
    for _ in 1..reps {
        let (o, d) = timed(&mut f);
        if d < best {
            best = d;
            out = o;
        }
    }
    (out, best)
}

/// The pruning-power series (the paper's Figure 4/5 axes): per-level
/// candidate counts and what each bound discarded, from the observer's
/// level events.
fn pruning_json(levels: &[LevelEvent]) -> String {
    let mut s = String::from("[");
    for (i, l) in levels.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(
            s,
            "{{\"level\": {}, \"candidates\": {}, \"evaluated\": {}, \"kept\": {}, \"pruned_bound\": {}, \"frequent\": {}}}",
            l.level, l.candidates, l.evaluated, l.kept, l.pruned_bound, l.frequent
        );
    }
    s.push(']');
    s
}

fn level_json(outcome: &MineOutcome) -> String {
    let mut s = String::from("[");
    for (i, l) in outcome.stats.levels.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(
            s,
            "{{\"level\": {}, \"candidates\": {}, \"frequent\": {}, \"extended\": {}, \"elapsed_ms\": {:.3}}}",
            l.level,
            l.candidates,
            l.frequent,
            l.extended,
            ms(l.elapsed)
        );
    }
    s.push(']');
    s
}

/// Run the baseline and write `BENCH_mining.json` into the current
/// directory. `--quick` shrinks lengths so CI smoke runs stay fast;
/// the acceptance numbers come from the full run.
pub fn run(quick: bool) {
    let gap = GapRequirement::new(GAP.0, GAP.1).unwrap();
    let seed_len = if quick { 10_000 } else { 100_000 };
    let e2e_len = seed_len;
    let matrix_lens: &[usize] = if quick {
        &[5_000, 10_000]
    } else {
        &[25_000, 50_000, 100_000]
    };
    let reps = if quick { 2 } else { 3 };

    println!(
        "bench: level-3 seeding, DNA, L = {seed_len}, gap [{}, {}]",
        GAP.0, GAP.1
    );
    let seq = scaling_sequence(seed_len);
    let (reference_pils, seed_ref) = best_of(reps, || build_all_reference(&seq, gap, 3));
    let (packed_pils, seed_new) = best_of(reps, || Pil::build_all(&seq, gap, 3));
    assert_eq!(reference_pils.len(), packed_pils.len(), "engines disagree");
    let seed_speedup = seed_ref.as_secs_f64() / seed_new.as_secs_f64();
    println!(
        "  reference {:.1} ms | packed {:.1} ms | speedup {:.2}x",
        ms(seed_ref),
        ms(seed_new),
        seed_speedup
    );

    let end_to_end = end_to_end(quick);
    let corpus_scale = corpus_scale(quick);
    let e2e_seq = scaling_sequence(e2e_len);
    let config = MppConfig::default();

    let mut matrix = String::from("[");
    for (i, &len) in matrix_lens.iter().enumerate() {
        let seq = scaling_sequence(len);
        let (outcome, total) =
            timed(|| mpp_parallel(&seq, gap, RHO, N, config.clone(), THREADS).unwrap());
        println!(
            "bench: matrix L = {len}: {:.1} ms over {} levels",
            ms(total),
            outcome.stats.levels.len()
        );
        if i > 0 {
            matrix.push_str(", ");
        }
        let _ = write!(
            matrix,
            "{{\"length\": {}, \"gap\": [{}, {}], \"total_ms\": {:.3}, \"levels\": {}}}",
            len,
            GAP.0,
            GAP.1,
            ms(total),
            level_json(&outcome)
        );
    }
    matrix.push(']');

    // Pruning power (Figures 4–5): per-level candidate counts under the
    // Theorem 1 bound (mpp with fixed n, λ) vs the Theorem 2 bound
    // (mppm with e_m-estimated n, λ′). The frequent sets must agree —
    // the bounds only change how much survives *between* levels.
    let pp_len = if quick { 5_000 } else { 10_000 };
    let pp_m = 8;
    let pp_seq = scaling_sequence(pp_len);
    let mut lambda_metrics = MetricsObserver::new();
    let lambda = mpp_traced(&pp_seq, gap, RHO, N, config.clone(), &mut lambda_metrics).unwrap();
    let mut lambda_prime_metrics = MetricsObserver::new();
    let lambda_prime = mppm_traced(
        &pp_seq,
        gap,
        RHO,
        pp_m,
        config.clone(),
        &mut lambda_prime_metrics,
    )
    .unwrap();
    assert_eq!(
        lambda.frequent.len(),
        lambda_prime.frequent.len(),
        "λ and λ′ runs must find the same patterns"
    );
    let em = lambda_prime.stats.em.unwrap_or(0);
    println!(
        "bench: pruning power L = {pp_len}: λ kept {} vs λ′ kept {} (n {} vs {}, e_{pp_m} = {em})",
        lambda_metrics.levels.iter().map(|l| l.kept).sum::<usize>(),
        lambda_prime_metrics
            .levels
            .iter()
            .map(|l| l.kept)
            .sum::<usize>(),
        lambda.stats.n_used,
        lambda_prime.stats.n_used,
    );
    let pruning_power = format!(
        "{{\"length\": {pp_len}, \"m\": {pp_m}, \"em\": {em}, \"n_lambda\": {}, \"n_lambda_prime\": {}, \"frequent\": {},\n    \"lambda_levels\": {},\n    \"lambda_prime_levels\": {}}}",
        lambda.stats.n_used,
        lambda_prime.stats.n_used,
        lambda.frequent.len(),
        pruning_json(&lambda_metrics.levels),
        pruning_json(&lambda_prime_metrics.levels)
    );

    let engine_comparison = engine_comparison(&e2e_seq, gap, reps);
    let spill = spill_overhead(&e2e_seq, gap, reps);
    let join_kernel = join_kernel(&e2e_seq, gap, if quick { 50 } else { 200 });
    let simd_kernel = simd_kernel(&e2e_seq, gap, if quick { 20 } else { 100 });
    let single_thread = single_thread(if quick { 10_000 } else { 50_000 }, gap, reps);
    let query_throughput = query_throughput(gap, quick);
    let top_k_pruning = top_k_pruning(quick);

    // The adaptive-layout section (ISSUE-4): occupancy kernel sweep,
    // the representation-invariance gate with histogram, and the
    // DFS-first mppm sweep over the Figure 4–8 axes.
    let pil_occupancy = super::pil_repr::occupancy_section(quick);
    let pil_mining = super::pil_repr::mining_section(quick, None);
    let dfs_sweep = super::pil_repr::dfs_sweep(quick);

    let json = format!(
        "{{\n  \"config\": {{\"alphabet\": \"DNA\", \"gap\": [{}, {}], \"rho\": {RHO}, \"n\": {N}, \"threads\": {THREADS}, \"quick\": {quick}}},\n  \"seeding_level3\": {{\"length\": {seed_len}, \"patterns\": {}, \"reference_ms\": {:.3}, \"packed_ms\": {:.3}, \"speedup\": {:.3}}},\n  \"end_to_end\": {end_to_end},\n  \"corpus_scale\": {corpus_scale},\n  \"matrix\": {},\n  \"engine_comparison\": {engine_comparison},\n  \"spill\": {spill},\n  \"join_kernel\": {join_kernel},\n  \"simd_kernel\": {simd_kernel},\n  \"single_thread\": {single_thread},\n  \"query_throughput\": {query_throughput},\n  \"top_k_pruning\": {top_k_pruning},\n  \"pil_repr\": {{\"occupancy\": {pil_occupancy},\n    \"mining\": {pil_mining}}},\n  \"dfs_sweep\": {dfs_sweep},\n  \"pruning_power\": {}\n}}\n",
        GAP.0,
        GAP.1,
        packed_pils.len(),
        ms(seed_ref),
        ms(seed_new),
        seed_speedup,
        matrix,
        pruning_power
    );
    std::fs::write("BENCH_mining.json", &json).expect("write BENCH_mining.json");
    println!("bench: wrote BENCH_mining.json");
}

/// End-to-end mining on the acceptance config: `mpp_parallel` at
/// [`THREADS`] threads (persistent pool) vs the seed per-level-spawn
/// reference miner, per-level wall-clock from both. Returns the JSON
/// fragment for the `end_to_end` key.
pub fn end_to_end(quick: bool) -> String {
    let gap = GapRequirement::new(GAP.0, GAP.1).unwrap();
    let e2e_len = if quick { 10_000 } else { 100_000 };
    let reps = if quick { 2 } else { 3 };
    println!("bench: end-to-end mpp, {THREADS} threads, L = {e2e_len}, rho = {RHO}");
    let e2e_seq = scaling_sequence(e2e_len);
    let config = MppConfig::default();
    let (old_outcome, e2e_ref) = best_of(reps.min(2), || {
        mpp_reference(&e2e_seq, gap, RHO, N, config.clone(), THREADS).unwrap()
    });
    let (new_outcome, e2e_new) = best_of(reps.min(2), || {
        mpp_parallel(&e2e_seq, gap, RHO, N, config.clone(), THREADS).unwrap()
    });
    assert_eq!(
        old_outcome.frequent.len(),
        new_outcome.frequent.len(),
        "engines disagree"
    );
    let e2e_speedup = e2e_ref.as_secs_f64() / e2e_new.as_secs_f64();
    println!(
        "  reference {:.1} ms | engine {:.1} ms | speedup {:.2}x | {} frequent",
        ms(e2e_ref),
        ms(e2e_new),
        e2e_speedup,
        new_outcome.frequent.len()
    );
    format!(
        "{{\"length\": {e2e_len}, \"threads\": {THREADS}, \"cpus\": {}, \"frequent\": {}, \"reference_ms\": {:.3}, \"engine_ms\": {:.3}, \"speedup\": {:.3},\n    \"reference_levels\": {},\n    \"engine_levels\": {}}}",
        cpus(),
        new_outcome.frequent.len(),
        ms(e2e_ref),
        ms(e2e_new),
        e2e_speedup,
        level_json(&old_outcome),
        level_json(&new_outcome)
    )
}

/// Hardware parallelism actually available to the run — the context
/// that makes a `threads > cpus` speedup below 1.0 legible.
fn cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Peak resident-set high-water mark from `/proc/self/status`, in KiB.
/// Returns 0 where the procfs gauge is unavailable (non-Linux).
fn vm_hwm_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Reset the `VmHWM` high-water mark so the next [`vm_hwm_kb`] read
/// reflects only the work since this call. Best-effort (needs Linux).
fn reset_vm_hwm() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// Corpus-scale sharded mining: pack a multi-sequence corpus, mine it
/// cold through the shard fan-out under a DFS arena ceiling, then
/// replay the checkpoint story — pause at ~50% of shards, resume, and
/// report the restart delta. Peak RSS (VmHWM) brackets each leg.
/// Returns the JSON fragment for the `corpus_scale` key.
pub fn corpus_scale(quick: bool) -> String {
    use perigap_core::corpus::{
        mine_corpus, CheckpointConfig, Corpus, CorpusMineConfig, ShardEngine,
    };
    use std::sync::Arc;

    let gap = GapRequirement::new(GAP.0, GAP.1).unwrap();
    let shards = if quick { 4 } else { 8 };
    let base = if quick { 2_000 } else { 10_000 };
    let step = if quick { 500 } else { 2_000 };
    let threads = ENGINE_THREADS;

    let seqs: Vec<(String, perigap_seq::Sequence)> = (0..shards)
        .map(|i| (format!("shard-{i}"), scaling_sequence(base + step * i)))
        .collect();
    let total_symbols: usize = seqs.iter().map(|(_, s)| s.len()).sum();
    let scratch = std::env::temp_dir().join(format!("perigap-bench-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("create corpus scratch dir");
    let path = scratch.join("bench.pgco");
    Corpus::write(&path, &seqs).expect("pack bench corpus");
    let corpus = Arc::new(Corpus::open(&path).expect("open bench corpus"));

    // Derive the arena ceiling from the longest shard's measured
    // unbounded peak. Under the wide acceptance gap the unspillable
    // breadth-first levels alone need most of that peak, so the
    // ceiling sits AT the peak: every shard completes, the zero
    // watermark still forces real spill traffic on each DFS handoff,
    // and the ceiling caps what any one shard may hold live.
    let longest = seqs
        .iter()
        .map(|(_, s)| s)
        .max_by_key(|s| s.len())
        .expect("non-empty corpus");
    let mut peak_metrics = MetricsObserver::new();
    mpp_dfs_traced(
        longest,
        gap,
        RHO,
        N,
        MppConfig::default(),
        1,
        &mut peak_metrics,
    )
    .expect("unbounded peak probe");
    let unbounded_peak = peak_metrics.complete.as_ref().unwrap().peak_arena_bytes;
    let ceiling = unbounded_peak.max(1);
    println!(
        "bench: corpus scale, {shards} shards / {total_symbols} symbols, {threads} threads, ceiling {ceiling} B (longest-shard peak)",
    );

    let config = |checkpoint: Option<CheckpointConfig>, threads: usize| CorpusMineConfig {
        n: N,
        min_sequences: 1,
        threads,
        engine: ShardEngine::Dfs,
        mpp: MppConfig {
            max_arena_bytes: Some(ceiling),
            spill_dir: Some(scratch.join("spill")),
            spill_watermark: 0.0,
            ..MppConfig::default()
        },
        checkpoint,
    };

    reset_vm_hwm();
    let (cold, cold_wall) = timed(|| mine_corpus(&corpus, gap, RHO, &config(None, threads)));
    let cold = cold.expect("cold corpus mine");
    let cold_peak_kb = vm_hwm_kb();
    println!(
        "  cold {:.1} ms | {} patterns | peak RSS {cold_peak_kb} KiB",
        ms(cold_wall),
        cold.outcome.patterns.len()
    );

    // Controlled kill at ~50% of shards: the serial leg stops exactly
    // after `shards / 2` checkpoint commits (the CI smoke job does the
    // same with a real SIGKILL).
    let ckpt = scratch.join("ckpt");
    let mut fresh = CheckpointConfig::fresh(&ckpt);
    fresh.stop_after_shards = Some(shards / 2);
    let (paused, pause_wall) = timed(|| mine_corpus(&corpus, gap, RHO, &config(Some(fresh), 1)));
    let paused_shards = match paused {
        Err(perigap_core::MineError::CorpusPaused { completed, .. }) => completed,
        other => panic!("expected a pause, got {other:?}"),
    };

    reset_vm_hwm();
    let (resumed, resume_wall) = timed(|| {
        mine_corpus(
            &corpus,
            gap,
            RHO,
            &config(Some(CheckpointConfig::resume(&ckpt)), threads),
        )
    });
    let resumed = resumed.expect("resumed corpus mine");
    let resume_peak_kb = vm_hwm_kb();
    assert_eq!(
        resumed.outcome, cold.outcome,
        "resumed corpus mine must be bit-identical to the cold mine"
    );
    let restart_delta = resume_wall.as_secs_f64() / cold_wall.as_secs_f64();
    println!(
        "  paused after {paused_shards} shards ({:.1} ms) | resume {:.1} ms | restart delta {restart_delta:.2} | {} ckpt records / {} B",
        ms(pause_wall),
        ms(resume_wall),
        resumed.stats.checkpoint_records,
        resumed.stats.checkpoint_bytes
    );
    let _ = std::fs::remove_dir_all(&scratch);

    format!(
        "{{\"shards\": {shards}, \"total_symbols\": {total_symbols}, \"threads\": {threads}, \"cpus\": {}, \"engine\": \"dfs\", \"ceiling_bytes\": {ceiling}, \"patterns\": {}, \"cold_ms\": {:.3}, \"cold_peak_rss_kb\": {cold_peak_kb}, \"paused_shards\": {paused_shards}, \"pause_ms\": {:.3}, \"resume_ms\": {:.3}, \"restart_delta\": {restart_delta:.3}, \"resume_peak_rss_kb\": {resume_peak_kb}, \"restored_shards\": {}, \"checkpoint_records\": {}, \"checkpoint_bytes\": {}}}",
        cpus(),
        cold.outcome.patterns.len(),
        ms(cold_wall),
        ms(pause_wall),
        ms(resume_wall),
        resumed.stats.restored_shards,
        resumed.stats.checkpoint_records,
        resumed.stats.checkpoint_bytes
    )
}

/// Engine threads for the BFS-vs-DFS comparison (the ISSUE-3
/// acceptance config).
const ENGINE_THREADS: usize = 4;

/// Breadth-first pooled engine vs the hybrid BFS→DFS engine on the
/// acceptance config: best-of wall-clock, the deterministic peak
/// live-arena bytes each engine reports, and a counter-identity check.
/// Returns the JSON fragment.
fn engine_comparison(seq: &perigap_seq::Sequence, gap: GapRequirement, reps: usize) -> String {
    let config = MppConfig::default();
    println!(
        "bench: engine comparison bfs vs dfs, {ENGINE_THREADS} threads, L = {}",
        seq.len()
    );
    let (_, bfs_wall) = best_of(reps, || {
        mpp_parallel(seq, gap, RHO, N, config.clone(), ENGINE_THREADS).unwrap()
    });
    let (_, dfs_wall) = best_of(reps, || {
        mpp_dfs(seq, gap, RHO, N, config.clone(), ENGINE_THREADS).unwrap()
    });
    // Peaks come from one traced run each; the gauge is deterministic
    // across thread schedules (transient chunk buffers are unaccounted).
    let mut bfs_metrics = MetricsObserver::new();
    let bfs = mpp_parallel_traced(
        seq,
        gap,
        RHO,
        N,
        config.clone(),
        ENGINE_THREADS,
        &mut bfs_metrics,
    )
    .unwrap();
    let mut dfs_metrics = MetricsObserver::new();
    let dfs = mpp_dfs_traced(
        seq,
        gap,
        RHO,
        N,
        config.clone(),
        ENGINE_THREADS,
        &mut dfs_metrics,
    )
    .unwrap();
    let bfs_peak = bfs_metrics.complete.as_ref().unwrap().peak_arena_bytes;
    let dfs_peak = dfs_metrics.complete.as_ref().unwrap().peak_arena_bytes;

    let counters_identical = bfs.frequent == dfs.frequent
        && bfs.stats.n_used == dfs.stats.n_used
        && bfs.stats.support_saturated == dfs.stats.support_saturated
        && bfs.stats.levels.len() == dfs.stats.levels.len()
        && bfs
            .stats
            .levels
            .iter()
            .zip(&dfs.stats.levels)
            .all(|(a, b)| {
                a.level == b.level
                    && a.candidates == b.candidates
                    && a.frequent == b.frequent
                    && a.extended == b.extended
            });
    assert!(counters_identical, "engines disagree on stats counters");
    assert!(
        dfs_peak < bfs_peak,
        "dfs peak {dfs_peak} must be strictly below bfs peak {bfs_peak}"
    );
    println!(
        "  bfs {:.1} ms peak {} B | dfs {:.1} ms peak {} B | peak ratio {:.2}x",
        ms(bfs_wall),
        bfs_peak,
        ms(dfs_wall),
        dfs_peak,
        bfs_peak as f64 / dfs_peak as f64
    );
    format!(
        "{{\"length\": {}, \"threads\": {ENGINE_THREADS}, \"frequent\": {}, \"bfs_ms\": {:.3}, \"dfs_ms\": {:.3}, \"bfs_peak_arena_bytes\": {bfs_peak}, \"dfs_peak_arena_bytes\": {dfs_peak}, \"peak_ratio\": {:.3}, \"counters_identical\": {counters_identical}}}",
        seq.len(),
        dfs.frequent.len(),
        ms(bfs_wall),
        ms(dfs_wall),
        bfs_peak as f64 / dfs_peak as f64
    )
}

/// Spill-to-disk overhead on the acceptance config: the DFS engine
/// unbounded vs under 2–3 arena ceilings derived from its own measured
/// peak, spilling to a temp dir with a zero watermark (spill on every
/// handoff). A ceiling whose hot working set genuinely does not fit is
/// reported as `completed: false` rather than papered over. Returns
/// the JSON fragment.
fn spill_overhead(seq: &perigap_seq::Sequence, gap: GapRequirement, reps: usize) -> String {
    println!(
        "bench: spill overhead, {ENGINE_THREADS} threads, L = {}",
        seq.len()
    );
    let mut metrics = MetricsObserver::new();
    let base = mpp_dfs_traced(
        seq,
        gap,
        RHO,
        N,
        MppConfig::default(),
        ENGINE_THREADS,
        &mut metrics,
    )
    .unwrap();
    let peak = metrics.complete.as_ref().unwrap().peak_arena_bytes;
    let (_, unbounded_wall) = best_of(reps, || {
        mpp_dfs(seq, gap, RHO, N, MppConfig::default(), ENGINE_THREADS).unwrap()
    });
    let dir = std::env::temp_dir().join(format!("perigap-bench-spill-{}", std::process::id()));
    let mut rows = Vec::new();
    for pct in [150usize, 100, 75] {
        let cap = (peak * pct / 100).max(1);
        let config = MppConfig {
            max_arena_bytes: Some(cap),
            spill_dir: Some(dir.clone()),
            spill_watermark: 0.0,
            ..MppConfig::default()
        };
        match mpp_dfs(seq, gap, RHO, N, config.clone(), ENGINE_THREADS) {
            Ok(outcome) => {
                assert_eq!(
                    outcome.frequent, base.frequent,
                    "spilling changed the pattern set at {pct}% ceiling"
                );
                let (_, wall) = best_of(reps, || {
                    mpp_dfs(seq, gap, RHO, N, config.clone(), ENGINE_THREADS).unwrap()
                });
                let overhead = wall.as_secs_f64() / unbounded_wall.as_secs_f64();
                println!(
                    "  ceiling {pct}% ({cap} B): {:.1} ms ({overhead:.2}x) | {} records / {} B spilled",
                    ms(wall),
                    outcome.stats.spilled_records,
                    outcome.stats.spilled_bytes
                );
                rows.push(format!(
                    "{{\"ceiling_pct\": {pct}, \"cap_bytes\": {cap}, \"completed\": true, \"wall_ms\": {:.3}, \"overhead\": {overhead:.3}, \"spilled_records\": {}, \"spilled_bytes\": {}, \"restored_records\": {}, \"restored_bytes\": {}}}",
                    ms(wall),
                    outcome.stats.spilled_records,
                    outcome.stats.spilled_bytes,
                    outcome.stats.restored_records,
                    outcome.stats.restored_bytes
                ));
            }
            Err(e) => {
                println!("  ceiling {pct}% ({cap} B): aborted ({e})");
                rows.push(format!(
                    "{{\"ceiling_pct\": {pct}, \"cap_bytes\": {cap}, \"completed\": false, \"error\": \"{e}\"}}"
                ));
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
    format!(
        "{{\"length\": {}, \"threads\": {ENGINE_THREADS}, \"unbounded_ms\": {:.3}, \"unbounded_peak_arena_bytes\": {peak}, \"ceilings\": [{}]}}",
        seq.len(),
        ms(unbounded_wall),
        rows.join(", ")
    )
}

/// The batched multi-suffix kernel vs per-candidate joins over the same
/// work: every level-3 left parent joined against its full suffix
/// fan-out, `rounds` times. Returns the JSON fragment.
fn join_kernel(seq: &perigap_seq::Sequence, gap: GapRequirement, rounds: usize) -> String {
    use std::collections::HashMap;
    let pils: Vec<(Vec<u8>, Pil)> = {
        let mut v: Vec<_> = Pil::build_all(seq, gap, 3)
            .into_iter()
            .map(|(p, pil)| (p.codes().to_vec(), pil))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    };
    let by_prefix: HashMap<&[u8], Vec<usize>> = {
        let mut m: HashMap<&[u8], Vec<usize>> = HashMap::new();
        for (i, (codes, _)) in pils.iter().enumerate() {
            m.entry(&codes[..2]).or_default().push(i);
        }
        m
    };
    let fan_outs: Vec<(usize, Vec<usize>)> = pils
        .iter()
        .enumerate()
        .filter_map(|(i, (codes, _))| {
            by_prefix
                .get(&codes[1..])
                .map(|partners| (i, partners.clone()))
        })
        .collect();
    let candidates: usize = fan_outs.iter().map(|(_, p)| p.len()).sum();

    let (_, per_candidate) = timed(|| {
        for _ in 0..rounds {
            for (i, partners) in &fan_outs {
                for &j in partners {
                    std::hint::black_box(Pil::join_checked(&pils[*i].1, &pils[j].1, gap));
                }
            }
        }
    });
    let mut scratch = MultiJoinScratch::default();
    let mut outs: Vec<Vec<(u32, u64)>> = Vec::new();
    let mut jc = JoinCounters::default();
    let (_, batched) = timed(|| {
        for _ in 0..rounds {
            for (i, partners) in &fan_outs {
                if outs.len() < partners.len() {
                    outs.resize_with(partners.len(), Vec::new);
                }
                let entries: Vec<&[(u32, u64)]> =
                    partners.iter().map(|&j| pils[j].1.entries()).collect();
                join_multi_into(
                    pils[*i].1.entries(),
                    &entries,
                    gap,
                    &mut outs[..entries.len()],
                    &mut scratch,
                    &mut jc,
                );
                std::hint::black_box(&outs);
            }
        }
    });
    // Cross-check once: the batched outputs must match the scalar path.
    for (i, partners) in fan_outs.iter().take(4) {
        let entries: Vec<&[(u32, u64)]> = partners.iter().map(|&j| pils[j].1.entries()).collect();
        if outs.len() < entries.len() {
            outs.resize_with(entries.len(), Vec::new);
        }
        join_multi_into(
            pils[*i].1.entries(),
            &entries,
            gap,
            &mut outs[..entries.len()],
            &mut scratch,
            &mut jc,
        );
        for (k, &j) in partners.iter().enumerate() {
            let (scalar, _) = Pil::join_checked(&pils[*i].1, &pils[j].1, gap);
            assert_eq!(scalar.entries(), &outs[k][..], "kernel mismatch");
        }
    }
    let speedup = per_candidate.as_secs_f64() / batched.as_secs_f64();
    println!(
        "bench: join kernel {candidates} candidates x {rounds} rounds: per-candidate {:.1} ms | batched {:.1} ms | speedup {:.2}x",
        ms(per_candidate),
        ms(batched),
        speedup
    );
    format!(
        "{{\"length\": {}, \"parents\": {}, \"candidates\": {candidates}, \"rounds\": {rounds}, \"per_candidate_ms\": {:.3}, \"batched_ms\": {:.3}, \"speedup\": {:.3}}}",
        seq.len(),
        fan_outs.len(),
        ms(per_candidate),
        ms(batched),
        speedup
    )
}

/// The SIMD kernel section: the AVX2 dense window probe vs the scalar
/// prefix-sum probe over the same pre-built windowed [`DensePil`]s (the
/// level-3 fan-out of `seq`), and the AVX2 level-3 seeding scan vs the
/// scalar packed-key path. Both halves cross-check outputs before any
/// timing is trusted; without AVX2 (or under `PERIGAP_FORCE_SCALAR`)
/// the "simd" timings measure the fallback and `simd_available` in the
/// fragment says so. Returns the JSON fragment.
fn simd_kernel(seq: &perigap_seq::Sequence, gap: GapRequirement, rounds: usize) -> String {
    use std::collections::HashMap;
    let available = simd_available();
    println!(
        "bench: simd kernel, L = {}, avx2 {}",
        seq.len(),
        if available { "yes" } else { "NO (fallback)" }
    );

    // The same shared-parent fan-out as `join_kernel`, with every
    // suffix lifted into the windowed dense layout the SIMD probe
    // wants. Builds happen here, outside the timed region.
    let pils: Vec<(Vec<u8>, Pil)> = {
        let mut v: Vec<_> = Pil::build_all(seq, gap, 3)
            .into_iter()
            .map(|(p, pil)| (p.codes().to_vec(), pil))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    };
    let dense: Vec<DensePil> = pils
        .iter()
        .map(|(_, pil)| DensePil::build_windowed(pil.entries(), gap).expect("bench counts fit u64"))
        .collect();
    let by_prefix: HashMap<&[u8], Vec<usize>> = {
        let mut m: HashMap<&[u8], Vec<usize>> = HashMap::new();
        for (i, (codes, _)) in pils.iter().enumerate() {
            m.entry(&codes[..2]).or_default().push(i);
        }
        m
    };
    let fan_outs: Vec<(usize, Vec<usize>)> = pils
        .iter()
        .enumerate()
        .filter_map(|(i, (codes, _))| {
            by_prefix
                .get(&codes[1..])
                .map(|partners| (i, partners.clone()))
        })
        .collect();
    let candidates: usize = fan_outs.iter().map(|(_, p)| p.len()).sum();

    // Cross-check first: the vector probe must be bit-identical to the
    // scalar one over every candidate in the fan-out.
    let mut jc = JoinCounters::default();
    let mut scalar_out = Vec::new();
    let mut simd_out = Vec::new();
    for (i, partners) in &fan_outs {
        for &j in partners {
            scalar_out.clear();
            simd_out.clear();
            join_dense_into(
                pils[*i].1.entries(),
                &dense[j],
                gap,
                &mut scalar_out,
                &mut jc,
            );
            join_dense_kernel(
                ResolvedKernel::Simd,
                pils[*i].1.entries(),
                &dense[j],
                gap,
                &mut simd_out,
                &mut jc,
            );
            assert_eq!(scalar_out, simd_out, "dense probe kernels disagree");
        }
    }

    let (_, probe_scalar) = timed(|| {
        for _ in 0..rounds {
            for (i, partners) in &fan_outs {
                for &j in partners {
                    scalar_out.clear();
                    join_dense_into(
                        pils[*i].1.entries(),
                        &dense[j],
                        gap,
                        &mut scalar_out,
                        &mut jc,
                    );
                    std::hint::black_box(&scalar_out);
                }
            }
        }
    });
    let (_, probe_simd) = timed(|| {
        for _ in 0..rounds {
            for (i, partners) in &fan_outs {
                for &j in partners {
                    simd_out.clear();
                    join_dense_kernel(
                        ResolvedKernel::Simd,
                        pils[*i].1.entries(),
                        &dense[j],
                        gap,
                        &mut simd_out,
                        &mut jc,
                    );
                    std::hint::black_box(&simd_out);
                }
            }
        }
    });
    let probe_speedup = probe_scalar.as_secs_f64() / probe_simd.as_secs_f64();
    println!(
        "  dense probe {candidates} candidates x {rounds} rounds: scalar {:.1} ms | simd {:.1} ms | speedup {:.2}x",
        ms(probe_scalar),
        ms(probe_simd),
        probe_speedup
    );

    // Level-3 seeding: the whole seed build, scalar vs vector scan.
    // `seed_level3` returns (patterns, total PIL entries); both kernels
    // must agree exactly.
    let reps = 3;
    let (scalar_counts, seed_scalar) =
        best_of(reps, || seed_level3(seq, gap, ResolvedKernel::Scalar));
    let (simd_counts, seed_simd) = best_of(reps, || seed_level3(seq, gap, ResolvedKernel::Simd));
    assert_eq!(scalar_counts, simd_counts, "seeding kernels disagree");
    let seed_speedup = seed_scalar.as_secs_f64() / seed_simd.as_secs_f64();
    println!(
        "  level-3 seeding {} patterns / {} entries: scalar {:.1} ms | simd {:.1} ms | speedup {:.2}x",
        scalar_counts.0,
        scalar_counts.1,
        ms(seed_scalar),
        ms(seed_simd),
        seed_speedup
    );

    format!(
        "{{\"length\": {}, \"simd_available\": {available}, \"dense_probe\": {{\"parents\": {}, \"candidates\": {candidates}, \"rounds\": {rounds}, \"scalar_ms\": {:.3}, \"simd_ms\": {:.3}, \"speedup\": {:.3}}}, \"seeding_level3\": {{\"patterns\": {}, \"pil_entries\": {}, \"scalar_ms\": {:.3}, \"simd_ms\": {:.3}, \"speedup\": {:.3}}}}}",
        seq.len(),
        fan_outs.len(),
        ms(probe_scalar),
        ms(probe_simd),
        probe_speedup,
        scalar_counts.0,
        scalar_counts.1,
        ms(seed_scalar),
        ms(seed_simd),
        seed_speedup
    )
}

/// Single-thread end-to-end parity (the ISSUE-6 acceptance row): the
/// serial packed engine vs the seed reference at one thread, with
/// per-level wall-clock from both runs so a late-level regression is
/// visible individually, not averaged away. `late_levels_no_slower`
/// checks levels ≥ 7 at a 10% timing-noise tolerance. Returns the JSON
/// fragment.
fn single_thread(len: usize, gap: GapRequirement, reps: usize) -> String {
    let seq = scaling_sequence(len);
    let config = MppConfig::default();
    println!("bench: single-thread parity, L = {len}");
    let (ref_outcome, ref_wall) = best_of(reps, || {
        mpp_reference(&seq, gap, RHO, N, config.clone(), 1).unwrap()
    });
    let (new_outcome, new_wall) = best_of(reps, || mpp(&seq, gap, RHO, N, config.clone()).unwrap());
    assert_eq!(
        ref_outcome.frequent.len(),
        new_outcome.frequent.len(),
        "engines disagree"
    );
    let speedup = ref_wall.as_secs_f64() / new_wall.as_secs_f64();
    let late_levels_no_slower = new_outcome
        .stats
        .levels
        .iter()
        .zip(&ref_outcome.stats.levels)
        .filter(|(l, _)| l.level >= 7)
        .all(|(new, old)| new.elapsed.as_secs_f64() <= old.elapsed.as_secs_f64() * 1.10);
    println!(
        "  reference {:.1} ms | packed {:.1} ms | speedup {:.2}x | late levels no slower: {late_levels_no_slower}",
        ms(ref_wall),
        ms(new_wall),
        speedup
    );
    format!(
        "{{\"length\": {len}, \"threads\": 1, \"frequent\": {}, \"reference_ms\": {:.3}, \"engine_ms\": {:.3}, \"speedup\": {:.3}, \"late_levels_no_slower\": {late_levels_no_slower},\n    \"reference_levels\": {},\n    \"engine_levels\": {}}}",
        new_outcome.frequent.len(),
        ms(ref_wall),
        ms(new_wall),
        speedup,
        level_json(&ref_outcome),
        level_json(&new_outcome)
    )
}

/// Query throughput of the `pgmine serve` daemon over the mined
/// pattern set, at 1 / 4 / 16 concurrent clients. Each client replays a
/// mixed workload (support, topk, prefix, overlap in rotation) for a
/// fixed query count; every response is checked `"ok": true`, so a
/// regression that breaks answers cannot masquerade as a fast one.
/// Returns the JSON fragment.
fn query_throughput(gap: GapRequirement, quick: bool) -> String {
    use perigap_serve::Client;
    use perigap_store::{LoadedOutcome, PatternIndex};
    use std::sync::Arc;

    // A bounded mine of its own: occurrence summaries cost O(n·l·w) per
    // pattern, so the throughput section caps the pattern set with a
    // tighter rho instead of indexing the huge acceptance-config set.
    let len = if quick { 5_000 } else { 20_000 };
    let seq = scaling_sequence(len);
    let rho = 0.005;
    let outcome = mpp(&seq, gap, rho, N, MppConfig::default()).expect("throughput mine");
    let seq = &seq;
    let loaded = LoadedOutcome { outcome, gap, rho };
    let index = Arc::new(PatternIndex::build(
        &loaded,
        seq.alphabet().clone(),
        Some(seq),
    ));
    println!(
        "bench: query throughput, {} patterns indexed, L = {}",
        index.len(),
        seq.len()
    );

    // The mixed workload: one request line per indexed pattern kind,
    // derived from the top of the support ranking so every lookup hits.
    let mut workload: Vec<String> = Vec::new();
    for entry in index.top_k(8) {
        let text = entry.display(seq.alphabet());
        workload.push(format!("{{\"q\": \"support\", \"pattern\": \"{text}\"}}"));
        let prefix: String = text.chars().take(2).collect();
        workload.push(format!(
            "{{\"q\": \"prefix\", \"prefix\": \"{prefix}\", \"limit\": 16}}"
        ));
    }
    workload.push("{\"q\": \"topk\", \"k\": 10}".to_string());
    workload.push(format!(
        "{{\"q\": \"overlap\", \"a\": 1, \"b\": {}, \"limit\": 16}}",
        (seq.len() / 4).max(1)
    ));

    let per_client = if quick { 200 } else { 1_000 };
    let handle = perigap_serve::serve(
        Arc::clone(&index),
        "bench:memory".to_string(),
        "127.0.0.1:0",
        perigap_core::trace::NoopObserver,
    )
    .expect("bench server binds loopback");
    let addr = handle.addr();

    let mut rows = Vec::new();
    for clients in [1usize, 4, 16] {
        let workload = Arc::new(workload.clone());
        let (_, wall) = timed(|| {
            let workers: Vec<_> = (0..clients)
                .map(|w| {
                    let workload = Arc::clone(&workload);
                    std::thread::spawn(move || {
                        let mut client = Client::connect(addr, Duration::from_secs(60))
                            .expect("bench client connects");
                        for i in 0..per_client {
                            let line = &workload[(w + i) % workload.len()];
                            let response = client.roundtrip(line).expect("bench query answers");
                            assert!(
                                response.contains("\"ok\": true"),
                                "bench query failed: {line} -> {response}"
                            );
                        }
                    })
                })
                .collect();
            for worker in workers {
                worker.join().expect("bench client finishes");
            }
        });
        let total = (clients * per_client) as f64;
        let qps = total / wall.as_secs_f64();
        println!(
            "  {clients:>2} clients x {per_client} queries: {:.1} ms | {qps:.0} qps",
            ms(wall)
        );
        rows.push(format!(
            "{{\"clients\": {clients}, \"queries_per_client\": {per_client}, \"wall_ms\": {:.3}, \"qps\": {qps:.1}}}",
            ms(wall)
        ));
    }
    handle.shutdown();
    format!(
        "{{\"length\": {}, \"patterns\": {}, \"workload_kinds\": [\"support\", \"topk\", \"prefix\", \"overlap\"], \"rows\": [{}]}}",
        seq.len(),
        index.len(),
        rows.join(", ")
    )
}

/// Top-k pruning vs full mine + post-filter, both gap regimes. The
/// flexible regime (`[0, 9]`, the acceptance gap) can only gate
/// emission — a child's support may exceed its parent's by up to
/// `W = M − N + 1`, so no subtree can be cut and the honest win is
/// bounded. The rigid regime (`0:0`, `W = 1`) has anti-monotone
/// support, so the rising floor prunes whole subtrees; `--top-k 100`
/// is required ≥ 5× there on the full-size run. Every pruned outcome
/// is compared bit-for-bit (patterns, supports, ratio bits, order)
/// against [`select_top_k`] over the full mine before its timing is
/// recorded. Returns the JSON fragment.
pub fn top_k_pruning(quick: bool) -> String {
    top_k_pruning_at(
        if quick { 10_000 } else { 50_000 },
        if quick { 1 } else { 3 },
    )
}

fn top_k_pruning_at(len: usize, reps: usize) -> String {
    let seq = scaling_sequence(len);
    let ks: [usize; 3] = [10, 100, 1000];
    let mut regimes = Vec::new();
    // The rigid regime needs its own support threshold: at W = 1 a
    // pattern's occurrences are exact substring chains, so the
    // scaling sequence's RHO (tuned for flexible-gap counts) lands at
    // min_sup ≈ 1 and the full mine enumerates every distinct
    // substring — unbounded. Pinning min_sup ≈ 3 keeps the full mine
    // finite while leaving a long low-support tail for the floor to
    // prune.
    let rigid_rho = 3.0 / len as f64;
    for (regime, gap, rho) in [
        ("flexible", GapRequirement::new(GAP.0, GAP.1).unwrap(), RHO),
        ("rigid", GapRequirement::new(0, 0).unwrap(), rigid_rho),
    ] {
        println!(
            "bench: top-k pruning, {regime} gap [{}, {}], L = {len}, rho = {rho}",
            gap.min(),
            gap.max()
        );
        let config = MppConfig::default();
        let (full, full_wall) = best_of(reps, || {
            mpp_parallel(&seq, gap, rho, N, config.clone(), THREADS).unwrap()
        });
        let mut rows = Vec::new();
        for k in ks {
            let topk_cfg = MppConfig {
                prune: PruneMode::top_k(k),
                ..config.clone()
            };
            let (pruned, topk_wall) = best_of(reps, || {
                mpp_parallel(&seq, gap, rho, N, topk_cfg.clone(), THREADS).unwrap()
            });
            // The oracle: post-filter the full mine. Its cost counts
            // toward the baseline the pruned run is up against.
            let (oracle, filter_wall) = best_of(reps, || select_top_k(&full.frequent, k));
            assert_eq!(oracle.len(), pruned.frequent.len(), "top-{k} disagrees");
            for (want, got) in oracle.iter().zip(&pruned.frequent) {
                assert_eq!(want.pattern, got.pattern, "top-{k} pattern order");
                assert_eq!(want.support, got.support, "top-{k} support");
                assert_eq!(
                    want.ratio.to_bits(),
                    got.ratio.to_bits(),
                    "top-{k} ratio bits"
                );
            }
            let baseline = full_wall + filter_wall;
            let speedup = baseline.as_secs_f64() / topk_wall.as_secs_f64();
            println!(
                "  k = {k:>4}: full+filter {:.1} ms | top-k {:.1} ms | speedup {speedup:.2}x | floor raises {} | pruned by floor {}",
                ms(baseline),
                ms(topk_wall),
                pruned.stats.floor_raises,
                pruned.stats.pruned_by_floor
            );
            rows.push(format!(
                "{{\"k\": {k}, \"kept\": {}, \"full_filter_ms\": {:.3}, \"topk_ms\": {:.3}, \"speedup\": {speedup:.3}, \"floor_raises\": {}, \"pruned_by_floor\": {}, \"identical\": true}}",
                pruned.frequent.len(),
                ms(baseline),
                ms(topk_wall),
                pruned.stats.floor_raises,
                pruned.stats.pruned_by_floor
            ));
        }
        regimes.push(format!(
            "{{\"regime\": \"{regime}\", \"gap\": [{}, {}], \"rho\": {rho}, \"frequent\": {}, \"full_ms\": {:.3}, \"rows\": [{}]}}",
            gap.min(),
            gap.max(),
            full.frequent.len(),
            ms(full_wall),
            rows.join(", ")
        ));
    }
    format!(
        "{{\"length\": {len}, \"n\": {N}, \"regimes\": [{}]}}",
        regimes.join(",\n    ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_of_returns_a_result() {
        let (v, d) = best_of(3, || 41 + 1);
        assert_eq!(v, 42);
        assert!(d.as_nanos() < 1_000_000_000);
    }

    #[test]
    fn pruning_json_matches_engine_stats() {
        let seq = scaling_sequence(2_000);
        let gap = GapRequirement::new(0, 2).unwrap();
        let mut metrics = MetricsObserver::new();
        let outcome = mpp_traced(&seq, gap, 0.001, 5, MppConfig::default(), &mut metrics).unwrap();
        assert_eq!(metrics.levels.len(), outcome.stats.levels.len());
        let json = pruning_json(&metrics.levels);
        assert!(json.contains("\"pruned_bound\""), "{json}");
        assert!(json.contains("\"level\": 3"), "{json}");
    }

    #[test]
    fn engine_comparison_fragment_shape() {
        let seq = scaling_sequence(3_000);
        let gap = GapRequirement::new(GAP.0, GAP.1).unwrap();
        let json = engine_comparison(&seq, gap, 1);
        assert!(json.contains("\"counters_identical\": true"), "{json}");
        assert!(json.contains("\"dfs_peak_arena_bytes\""), "{json}");
    }

    #[test]
    fn join_kernel_fragment_matches_scalar_path() {
        let seq = scaling_sequence(2_000);
        let gap = GapRequirement::new(0, 2).unwrap();
        let json = join_kernel(&seq, gap, 2);
        assert!(json.contains("\"speedup\""), "{json}");
        assert!(json.contains("\"candidates\""), "{json}");
    }

    #[test]
    fn simd_kernel_fragment_cross_checks() {
        let seq = scaling_sequence(2_000);
        let gap = GapRequirement::new(0, 2).unwrap();
        let json = simd_kernel(&seq, gap, 2);
        assert!(json.contains("\"dense_probe\""), "{json}");
        assert!(json.contains("\"seeding_level3\""), "{json}");
        assert!(json.contains("\"simd_available\""), "{json}");
    }

    #[test]
    fn single_thread_fragment_shape() {
        let gap = GapRequirement::new(0, 2).unwrap();
        let json = single_thread(2_000, gap, 1);
        assert!(json.contains("\"threads\": 1"), "{json}");
        assert!(json.contains("\"late_levels_no_slower\""), "{json}");
        assert!(json.contains("\"engine_levels\""), "{json}");
    }

    #[test]
    fn query_throughput_fragment_shape() {
        let gap = GapRequirement::new(0, 2).unwrap();
        let json = query_throughput(gap, true);
        assert!(json.contains("\"workload_kinds\""), "{json}");
        assert!(json.contains("\"clients\": 16"), "{json}");
        assert!(json.contains("\"qps\""), "{json}");
    }

    #[test]
    fn top_k_pruning_fragment_shape() {
        let json = top_k_pruning_at(3_000, 1);
        assert!(json.contains("\"regime\": \"flexible\""), "{json}");
        assert!(json.contains("\"regime\": \"rigid\""), "{json}");
        assert!(json.contains("\"k\": 1000"), "{json}");
        assert!(json.contains("\"identical\": true"), "{json}");
        assert!(json.contains("\"pruned_by_floor\""), "{json}");
    }

    #[test]
    fn level_json_shape() {
        let seq = scaling_sequence(2_000);
        let gap = GapRequirement::new(0, 2).unwrap();
        let outcome = mpp_parallel(&seq, gap, 0.001, 5, MppConfig::default(), 2).unwrap();
        let json = level_json(&outcome);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"level\": 3"));
        assert!(json.contains("elapsed_ms"));
    }
}
