//! Figure 7: MPPm execution time vs minimum gap `N`.
//!
//! Paper configuration: L = 1000, W = 4 (gap `[N, N+3]`), m = 8,
//! ρs = 0.003%. Expected shape: time *increases* with N — larger N
//! makes `λ(n, n−i)` smaller (Equation 4 is decreasing in N), so fewer
//! candidates are pruned. The effect is mild (paper: 330 s → 400 s
//! across N = 8..12).

use super::{paper, timed_median};
use crate::data::ax_fragment;
use perigap_analysis::report::{seconds, TextTable};
use perigap_core::mpp::MppConfig;
use perigap_core::mppm::mppm;
use perigap_core::GapRequirement;

/// Time MPPm for each minimum gap in `ns` (gap `[N, N+3]`).
pub fn sweep(seq_len: usize, ns: &[usize], m: usize) -> Vec<(usize, std::time::Duration, usize)> {
    let seq = ax_fragment(seq_len);
    ns.iter()
        .map(|&n| {
            let gap = GapRequirement::new(n, n + 3).expect("valid sweep gap");
            let (outcome, t) = timed_median(3, || {
                mppm(&seq, gap, paper::RHO, m, MppConfig::default()).expect("mppm runs")
            });
            (n, t, outcome.frequent.len())
        })
        .collect()
}

/// Print the Figure 7 table.
pub fn run(seq_len: usize, ns: &[usize]) {
    println!("Figure 7 — MPPm time vs minimum gap N; L = {seq_len}, W = 4, m = 8, rho = 0.003%\n");
    let mut table = TextTable::new(&["N", "gap", "time (s)", "patterns"]);
    for (n, t, patterns) in sweep(seq_len, ns, 8) {
        table.row(&[
            n.to_string(),
            format!("[{n}, {}]", n + 3),
            seconds(t),
            patterns.to_string(),
        ]);
    }
    print!("{}", table.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_uses_w_equals_four() {
        let rows = sweep(400, &[4, 6], 4);
        assert_eq!(rows.len(), 2);
    }
}
