//! `skew` — per-worker utilization from a `--trace` JSONL file.
//!
//! The worker pool emits one `pool` event per parallel level with a
//! per-worker breakdown (`{worker, chunks, candidates, busy_ms,
//! idle_ms}`; see `perigap_core::trace`). This experiment sums those
//! across the whole run and renders a utilization table so load
//! imbalance — one worker dragging a level while the rest idle — is
//! visible without replaying the mine. A worker whose total busy time
//! exceeds twice the median is flagged `SKEW`.
//!
//! Each `level` event also carries the join-path micro-counters
//! (`joins`, `probed`, `reallocs`, `bytes_moved`, `join_ms`); those are
//! rendered as a second table so a skewed level can be tied to its
//! join work — many reallocs on one level points at reserve trouble,
//! a high probed/joins ratio at overlap-heavy fan-out.

use perigap_analysis::report::TextTable;
use perigap_core::trace::Json;

/// Per-worker totals accumulated over every `pool` event in a trace.
#[derive(Clone, Debug, Default, PartialEq)]
struct WorkerTotals {
    chunks: u128,
    candidates: u128,
    busy_ms: f64,
    idle_ms: f64,
}

/// Read `trace_path`, render the utilization table, print it.
pub fn run(trace_path: &str) {
    let text = match std::fs::read_to_string(trace_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("skew: cannot read {trace_path:?}: {e}");
            std::process::exit(2);
        }
    };
    match render(&text) {
        Ok(table) => println!("{table}"),
        Err(e) => {
            eprintln!("skew: {trace_path:?}: {e}");
            std::process::exit(2);
        }
    }
}

/// Aggregate the `pool` events of a JSONL trace into the utilization
/// table. Errors on unparsable lines; a trace without pool events (a
/// serial run) renders a note instead of an empty table.
pub fn render(text: &str) -> Result<String, String> {
    let mut totals: Vec<WorkerTotals> = Vec::new();
    let mut pool_events = 0usize;
    let mut join_rows: Vec<JoinRow> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if value.get("event").and_then(Json::as_str) == Some("level") {
            if let Some(row) = JoinRow::from_event(&value) {
                join_rows.push(row);
            }
            continue;
        }
        if value.get("event").and_then(Json::as_str) != Some("pool") {
            continue;
        }
        pool_events += 1;
        let workers = value
            .get("workers")
            .and_then(Json::as_arr)
            .ok_or(format!("line {}: pool event without workers", i + 1))?;
        for w in workers {
            let field = |key: &str| {
                w.get(key)
                    .ok_or(format!("line {}: worker entry without {key}", i + 1))
            };
            let id = field("worker")?
                .as_usize()
                .ok_or(format!("line {}: bad worker id", i + 1))?;
            if totals.len() <= id {
                totals.resize(id + 1, WorkerTotals::default());
            }
            let t = &mut totals[id];
            t.chunks += field("chunks")?.as_u128().unwrap_or(0);
            t.candidates += field("candidates")?.as_u128().unwrap_or(0);
            t.busy_ms += field("busy_ms")?.as_f64().unwrap_or(0.0);
            t.idle_ms += field("idle_ms")?.as_f64().unwrap_or(0.0);
        }
    }
    if pool_events == 0 {
        let mut out = "no pool events in trace (serial run, or no level crossed the \
                   parallel threshold); nothing to skew-check\n"
            .to_string();
        out.push_str(&render_join_rows(&join_rows));
        return Ok(out);
    }

    // Flag threshold: twice the median total busy time. With an even
    // worker count the lower-middle element is the (conservative) pick.
    let mut busy: Vec<f64> = totals.iter().map(|t| t.busy_ms).collect();
    busy.sort_by(|a, b| a.partial_cmp(b).expect("finite durations"));
    let median = busy[(busy.len() - 1) / 2];
    let threshold = 2.0 * median;

    let mut out = format!(
        "worker utilization over {pool_events} pool event{} (flag: busy > 2x median {median:.3} ms)\n\n",
        if pool_events == 1 { "" } else { "s" }
    );
    let mut table = TextTable::new(&[
        "worker",
        "chunks",
        "candidates",
        "busy ms",
        "idle ms",
        "util %",
        "",
    ]);
    let mut flagged = 0usize;
    for (id, t) in totals.iter().enumerate() {
        let wall = t.busy_ms + t.idle_ms;
        let util = if wall > 0.0 {
            100.0 * t.busy_ms / wall
        } else {
            0.0
        };
        let skewed = t.busy_ms > threshold;
        flagged += skewed as usize;
        table.row(&[
            // Worker 0 is the main thread (it steals between recvs).
            if id == 0 {
                "0 (main)".to_string()
            } else {
                id.to_string()
            },
            t.chunks.to_string(),
            t.candidates.to_string(),
            format!("{:.3}", t.busy_ms),
            format!("{:.3}", t.idle_ms),
            format!("{util:.1}"),
            if skewed {
                "SKEW".to_string()
            } else {
                String::new()
            },
        ]);
    }
    out.push_str(&table.render());
    if flagged > 0 {
        out.push_str(&format!(
            "\n{flagged} worker{} above 2x the median busy time — chunk sizes may be \
             too coarse for this workload\n",
            if flagged == 1 { "" } else { "s" }
        ));
    }
    out.push_str(&render_join_rows(&join_rows));
    Ok(out)
}

/// Join-path micro-counters lifted from one `level` event.
struct JoinRow {
    level: usize,
    joins: u128,
    probed: u128,
    reallocs: u128,
    bytes_moved: u128,
    join_ms: f64,
}

impl JoinRow {
    fn from_event(value: &Json) -> Option<JoinRow> {
        Some(JoinRow {
            level: value.get("level")?.as_usize()?,
            joins: value.get("joins")?.as_u128()?,
            probed: value.get("probed")?.as_u128()?,
            reallocs: value.get("reallocs")?.as_u128()?,
            bytes_moved: value.get("bytes_moved")?.as_u128()?,
            join_ms: value.get("join_ms")?.as_f64()?,
        })
    }
}

/// The per-level join-counter table. Empty input (a trace predating the
/// counters, or one with no level events) renders nothing rather than
/// an empty table.
fn render_join_rows(rows: &[JoinRow]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let mut out = "\njoin-path counters per level\n\n".to_string();
    let mut table = TextTable::new(&[
        "level",
        "joins",
        "probed",
        "probed/join",
        "reallocs",
        "moved bytes",
        "join ms",
    ]);
    for r in rows {
        let per_join = if r.joins > 0 {
            format!("{:.1}", r.probed as f64 / r.joins as f64)
        } else {
            "-".to_string()
        };
        table.row(&[
            r.level.to_string(),
            r.joins.to_string(),
            r.probed.to_string(),
            per_join,
            r.reallocs.to_string(),
            r.bytes_moved.to_string(),
            format!("{:.3}", r.join_ms),
        ]);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: &str = r#"{"event": "seed", "level": 3, "patterns": 64, "pil_entries": 10, "arena_bytes": 100, "elapsed_ms": 1.0}
{"event": "level", "level": 4, "candidates": 12, "evaluated": 12, "frequent": 6, "kept": 6, "pruned_bound": 0, "pruned_support": 6, "arena_bytes": 200, "joins": 4, "probed": 120, "reallocs": 1, "bytes_moved": 96, "join_ms": 0.5, "elapsed_ms": 2.0, "saturated": false}
{"event": "pool", "level": 4, "chunks": 8, "workers": [{"worker": 0, "chunks": 2, "candidates": 100, "busy_ms": 1.0, "idle_ms": 3.0}, {"worker": 1, "chunks": 6, "candidates": 300, "busy_ms": 9.0, "idle_ms": 0.5}]}
{"event": "pool", "level": 5, "chunks": 8, "workers": [{"worker": 0, "chunks": 4, "candidates": 200, "busy_ms": 1.5, "idle_ms": 1.0}, {"worker": 1, "chunks": 4, "candidates": 200, "busy_ms": 2.0, "idle_ms": 0.0}]}
"#;

    #[test]
    fn aggregates_and_flags_skewed_workers() {
        let out = render(TRACE).unwrap();
        assert!(out.contains("2 pool events"), "{out}");
        // Worker 1: busy 11.0 ms vs median 2.5 (sorted lower-middle) — flagged.
        assert!(out.contains("SKEW"), "{out}");
        assert!(out.contains("0 (main)"), "{out}");
        assert!(out.contains("500"), "worker 1 candidate total: {out}");
        assert!(out.contains("1 worker above"), "{out}");
        // The level event's join counters land in the second table.
        assert!(out.contains("join-path counters"), "{out}");
        assert!(out.contains("30.0"), "probed/join ratio 120/4: {out}");
    }

    #[test]
    fn serial_trace_renders_note() {
        let out = render("{\"event\": \"seed\", \"level\": 3}\n").unwrap();
        assert!(out.contains("no pool events"), "{out}");
        assert!(
            !out.contains("join-path counters"),
            "no level events, no join table: {out}"
        );
    }

    #[test]
    fn serial_trace_with_levels_still_renders_join_counters() {
        let text: String = TRACE
            .lines()
            .filter(|l| !l.contains("\"pool\""))
            .map(|l| format!("{l}\n"))
            .collect();
        let out = render(&text).unwrap();
        assert!(out.contains("no pool events"), "{out}");
        assert!(out.contains("join-path counters"), "{out}");
        assert!(out.contains("120"), "{out}");
    }

    #[test]
    fn garbage_line_is_an_error() {
        assert!(render("not json\n").is_err());
    }

    #[test]
    fn real_parallel_trace_round_trips() {
        use perigap_core::mpp::MppConfig;
        use perigap_core::parallel::mpp_parallel_traced;
        use perigap_core::trace::JsonlObserver;
        use perigap_core::GapRequirement;
        let seq = crate::data::scaling_sequence(4_000);
        let gap = GapRequirement::new(0, 9).unwrap();
        let mut sink = JsonlObserver::new(Vec::new());
        mpp_parallel_traced(&seq, gap, 0.003e-2, 8, MppConfig::default(), 4, &mut sink).unwrap();
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        let out = render(&text).unwrap();
        assert!(
            out.contains("worker utilization") || out.contains("no pool events"),
            "{out}"
        );
    }
}
