//! Deterministic synthetic datasets substituting for the paper's NCBI
//! downloads (see DESIGN.md §3).
//!
//! The experiments need two things from their input:
//!
//! 1. **the AX829174-like fragment** — a 10,011-base human-like DNA
//!    sequence where, at gap `[9,12]` and `ρs = 0.003%`, short patterns
//!    are broadly frequent and the longest frequent patterns reach
//!    length ≈ 10–13. That happens when the sequence is AT-rich *and*
//!    carries helical-period structure: regions where A/T recur every
//!    ~10–12 bases for a dozen consecutive periods. We plant exactly
//!    that signal over an order-1 Markov background.
//! 2. **case-study genomes** — bacteria-like inputs (AT-rich, A/T
//!    periodic motifs) and eukaryote-like inputs (the same plus G-run
//!    motifs and weaker periodicity), fragmentable like the paper's
//!    100 kb windows.
//!
//! All generation is seeded; every call returns identical bytes.

use perigap_seq::gen::markov::MarkovModel;
use perigap_seq::gen::periodic::{plant_periodic, PeriodicMotif};
use perigap_seq::{Alphabet, Sequence};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Length of the real AX829174 entry the paper uses.
pub const AX829174_LEN: usize = 10_011;

/// Fixed seed namespace for the whole dataset family.
const SEED_BASE: u64 = 0x0A82_9174;

/// An AT-rich order-1 Markov background model with mild same-base
/// stickiness — matching the gross composition of human genomic DNA
/// (GC ≈ 41%).
fn human_like_background() -> MarkovModel {
    // Rows: context A, C, G, T; columns A, C, G, T.
    // Marginals ≈ A 0.30, C 0.20, G 0.20, T 0.30 with AA/TT affinity.
    let rows = vec![
        0.36, 0.18, 0.20, 0.26, // after A
        0.32, 0.22, 0.06, 0.40, // after C (CG suppression, real in vertebrates)
        0.28, 0.21, 0.21, 0.30, // after G
        0.24, 0.20, 0.22, 0.34, // after T
    ];
    MarkovModel::from_rows(Alphabet::Dna, 1, rows)
}

/// Plant helical-period A/T ladders: `count` occurrences of length-`l`
/// single-base motifs recurring at gaps in `[gap_lo, gap_hi]`.
fn plant_helical_ladders<R: Rng>(
    rng: &mut R,
    seq: &mut Sequence,
    count: usize,
    l: usize,
    gap_lo: usize,
    gap_hi: usize,
) {
    for _ in 0..count {
        // A-ladders and T-ladders in equal proportion, plus mixed
        // A/T motifs that give the case study its 2^8 variety.
        let motif: Vec<u8> = match rng.gen_range(0..3u8) {
            0 => vec![0; l],
            1 => vec![3; l],
            _ => (0..l)
                .map(|_| if rng.gen::<bool>() { 0 } else { 3 })
                .collect(),
        };
        let spec = PeriodicMotif {
            motif,
            gap_min: gap_lo,
            gap_max: gap_hi,
            occurrences: 1,
        };
        plant_periodic(rng, seq, &spec);
    }
}

/// The deterministic AX829174 substitute: 10,011 bases.
pub fn ax829174_like() -> Sequence {
    let mut rng = StdRng::seed_from_u64(SEED_BASE);
    let model = human_like_background();
    let mut seq = model.sample(&mut rng, AX829174_LEN);
    // ≈ 55 ladders of 14–17 periods at the helical spacing; each spans
    // ≈ 150–190 bases, heavily overlapping, concentrating the periodic
    // signal the miner is designed to find.
    let mut plant_rng = StdRng::seed_from_u64(SEED_BASE ^ 0xBEEF);
    for _ in 0..55 {
        let l = plant_rng.gen_range(14..=17);
        plant_helical_ladders(&mut plant_rng, &mut seq, 1, l, 9, 11);
    }
    // A/T-skewed composition blocks (~300 bases at P(A) ≈ 0.5 or
    // P(T) ≈ 0.5), the analogue of the homopolymer-rich stretches of
    // real genomic DNA. These are what pushes the longest frequent
    // pattern at ρs = 0.003% to length ≈ 13 — a block with per-base
    // match probability p supports length-l patterns while
    // p^l · N_l(block) clears ρs · N_l(whole); at p = 0.5 the
    // crossover sits at l ≈ 13, as in the paper's AX829174 run.
    // Fixed starts so every experiment prefix (the paper slices
    // L = 1000 fragments) contains at least one block of each skew.
    for (i, (start, weights)) in [
        (120usize, [0.50, 0.10, 0.10, 0.30]),
        (580, [0.30, 0.10, 0.10, 0.50]),
        (3_200, [0.50, 0.10, 0.10, 0.30]),
        (7_300, [0.30, 0.10, 0.10, 0.50]),
    ]
    .iter()
    .enumerate()
    {
        let mut block_rng = StdRng::seed_from_u64(SEED_BASE ^ (0xB10C + i as u64));
        plant_composition_block_at(&mut block_rng, &mut seq, *start, 300, weights);
    }
    seq
}

/// Overwrite a random `width`-base window with i.i.d. characters of the
/// given composition.
fn plant_composition_block<R: Rng>(
    rng: &mut R,
    seq: &mut Sequence,
    width: usize,
    weights: &[f64; 4],
) {
    let width = width.min(seq.len());
    let start = rng.gen_range(0..=seq.len() - width);
    plant_composition_block_at(rng, seq, start, width, weights);
}

/// Overwrite the window starting at `start` with i.i.d. characters of
/// the given composition (clamped to the sequence end).
fn plant_composition_block_at<R: Rng>(
    rng: &mut R,
    seq: &mut Sequence,
    start: usize,
    width: usize,
    weights: &[f64; 4],
) {
    assert!(start < seq.len(), "block start beyond sequence");
    let width = width.min(seq.len() - start);
    let block = perigap_seq::gen::iid::weighted(rng, Alphabet::Dna, width, weights);
    let mut codes = seq.codes().to_vec();
    codes[start..start + width].copy_from_slice(block.codes());
    *seq = Sequence::from_codes(Alphabet::Dna, codes).expect("codes stay valid");
}

/// A length-`len` prefix of the AX829174 substitute — the paper's
/// "randomly pick a length-L segment" step, made deterministic.
///
/// # Panics
/// Panics if `len > AX829174_LEN`.
pub fn ax_fragment(len: usize) -> Sequence {
    assert!(len <= AX829174_LEN, "fragment longer than the dataset");
    ax829174_like().slice(0..len)
}

/// A statistically *homogeneous* variant of the AX829174 substitute for
/// the Figure 8 scaling experiment: planted-feature density is uniform
/// in `len` (one composition block per 2,500 bases, ladders pro rata),
/// so mining time scales with length rather than with which features a
/// prefix happens to contain.
pub fn scaling_sequence(len: usize) -> Sequence {
    let mut rng = StdRng::seed_from_u64(SEED_BASE ^ 0x5CA1E);
    let model = human_like_background();
    let mut seq = model.sample(&mut rng, len);
    let mut plant_rng = StdRng::seed_from_u64(SEED_BASE ^ 0x5CA1E ^ 0xBEEF);
    let ladders = (55 * len) / AX829174_LEN;
    for _ in 0..ladders.max(1) {
        let l = plant_rng.gen_range(14..=17);
        plant_helical_ladders(&mut plant_rng, &mut seq, 1, l, 9, 11);
    }
    let mut start = 120usize;
    let mut a_rich = true;
    while start + 300 <= len {
        let weights = if a_rich {
            [0.50, 0.10, 0.10, 0.30]
        } else {
            [0.30, 0.10, 0.10, 0.50]
        };
        let mut block_rng = StdRng::seed_from_u64(SEED_BASE ^ start as u64);
        plant_composition_block_at(&mut block_rng, &mut seq, start, 300, &weights);
        a_rich = !a_rich;
        start += 2_500;
    }
    seq
}

/// Which flavour of synthetic genome to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GenomeKind {
    /// AT-rich with strong A/T helical periodicity (H. influenzae-like).
    Bacteria,
    /// Balanced composition with both A/T periodicity and planted
    /// G-runs (H. sapiens-like; the case study finds 16-G patterns).
    Eukaryote,
}

/// Build one synthetic genome of `len` bases. Deterministic per
/// `(kind, index)`.
pub fn synthetic_genome(kind: GenomeKind, index: u64, len: usize) -> Sequence {
    let seed = SEED_BASE
        .wrapping_mul(31)
        .wrapping_add(index)
        .wrapping_add(match kind {
            GenomeKind::Bacteria => 0x0B,
            GenomeKind::Eukaryote => 0x0E,
        });
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seq = match kind {
        GenomeKind::Bacteria => {
            // AT-rich i.i.d. base (≈ 62% AT) — bacterial genomes in the
            // study (H. influenzae ≈ 62% AT) are strongly AT-biased.
            perigap_seq::gen::iid::weighted(&mut rng, Alphabet::Dna, len, &[0.31, 0.19, 0.19, 0.31])
        }
        GenomeKind::Eukaryote => human_like_background().sample(&mut rng, len),
    };
    // Helical ladders at the case-study gap [10, 12]; density scales
    // with genome length (one ladder ≈ 170 bases).
    let ladders = (len / 400).max(4);
    plant_helical_ladders(&mut rng, &mut seq, ladders, 14, 10, 12);
    if kind == GenomeKind::Eukaryote {
        // G-rich isochore blocks: the paper finds G-only length-8 (even
        // 16/17-G) patterns frequent in eukaryote fragments. Sparse
        // planted ladders are far too weak for that — a frequent
        // length-8 pattern needs thousands of matching chains — but a
        // few hundred bases at P(G) ≈ 0.55 produce them, and G-dense
        // composition blocks are the realistic mechanism (isochores).
        let blocks = (len / 2500).max(1);
        for _ in 0..blocks {
            plant_g_block(&mut rng, &mut seq, 450);
        }
    }
    seq
}

/// Overwrite a random `width`-base window with G-dominated i.i.d.
/// composition (P(G) ≈ 0.55).
fn plant_g_block<R: Rng>(rng: &mut R, seq: &mut Sequence, width: usize) {
    plant_composition_block(rng, seq, width, &[0.15, 0.15, 0.55, 0.15]);
}

/// The bacterial panel of the case study: four named genomes.
pub fn bacteria_panel(len: usize) -> Vec<(String, Sequence)> {
    [
        "H. influenzae",
        "H. pylori",
        "M. genitalium",
        "M. pneumoniae",
    ]
    .iter()
    .enumerate()
    .map(|(i, name)| {
        (
            name.to_string(),
            synthetic_genome(GenomeKind::Bacteria, i as u64, len),
        )
    })
    .collect()
}

/// The eukaryote panel of the case study: three named genomes.
pub fn eukaryote_panel(len: usize) -> Vec<(String, Sequence)> {
    ["H. sapiens", "C. elegans", "D. melanogaster"]
        .iter()
        .enumerate()
        .map(|(i, name)| {
            (
                name.to_string(),
                synthetic_genome(GenomeKind::Eukaryote, i as u64, len),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use perigap_seq::stats::gc_content;

    #[test]
    fn ax_dataset_is_deterministic() {
        let a = ax829174_like();
        let b = ax829174_like();
        assert_eq!(a, b);
        assert_eq!(a.len(), AX829174_LEN);
    }

    #[test]
    fn ax_dataset_is_at_rich() {
        let s = ax829174_like();
        let gc = gc_content(&s);
        assert!(
            gc < 0.45,
            "expected AT-rich human-like composition, gc = {gc}"
        );
        assert!(gc > 0.25, "composition should not be degenerate, gc = {gc}");
    }

    #[test]
    fn fragments_are_prefixes() {
        let full = ax829174_like();
        let frag = ax_fragment(1000);
        assert_eq!(frag.len(), 1000);
        assert_eq!(frag.codes(), &full.codes()[..1000]);
    }

    #[test]
    fn genomes_differ_by_kind_and_index() {
        let b0 = synthetic_genome(GenomeKind::Bacteria, 0, 2000);
        let b1 = synthetic_genome(GenomeKind::Bacteria, 1, 2000);
        let e0 = synthetic_genome(GenomeKind::Eukaryote, 0, 2000);
        assert_ne!(b0, b1);
        assert_ne!(b0, e0);
        // Deterministic.
        assert_eq!(b0, synthetic_genome(GenomeKind::Bacteria, 0, 2000));
    }

    #[test]
    fn bacteria_are_more_at_rich_than_eukaryotes() {
        let b = synthetic_genome(GenomeKind::Bacteria, 0, 10_000);
        let e = synthetic_genome(GenomeKind::Eukaryote, 0, 10_000);
        assert!(gc_content(&b) < gc_content(&e) + 0.05);
        assert!(gc_content(&b) < 0.45);
    }

    #[test]
    fn panels_have_expected_members() {
        let bac = bacteria_panel(1000);
        assert_eq!(bac.len(), 4);
        assert!(bac.iter().all(|(_, s)| s.len() == 1000));
        let euk = eukaryote_panel(1000);
        assert_eq!(euk.len(), 3);
        assert_eq!(euk[0].0, "H. sapiens");
    }

    #[test]
    fn planted_periodicity_is_detectable() {
        use perigap_seq::oscillation::correlation_spectrum;
        let s = ax829174_like();
        // A→A correlation should peak in the helical band 10–12.
        let spec = correlation_spectrum(&s, 0, 0, 5, 20);
        let (peak, value) = spec.peak().unwrap();
        assert!(
            (10..=13).contains(&peak),
            "peak at distance {peak} (value {value})"
        );
    }
}
