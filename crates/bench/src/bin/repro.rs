//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <experiment> [--quick] [--adaptive]
//! repro skew --trace <run.jsonl>
//! repro pil-repr [--pil-repr auto|sparse|dense]
//!
//! experiments:
//!   counts     Section 4.1 N_l table and the N_10 example
//!   table2     Table 2   K_r walk-through on ACGTCCGT
//!   table3     Table 3   candidates per level, four miners
//!   fig4a      Figure 4a MPPm vs MPP(worst) over rho
//!   fig4b      Figure 4b MPPm vs MPP(best) over rho
//!   fig5       Figure 5  MPP time vs user input n
//!   fig6       Figure 6  MPPm time vs gap flexibility W
//!   fig7       Figure 7  MPPm time vs minimum gap N
//!   fig8       Figure 8  MPPm time vs sequence length L
//!   casestudy  Section 7 genome panels
//!   extensions windowed-model loss, collection mining, gap profiles
//!   bench      engine perf baseline -> BENCH_mining.json (not in `all`)
//!   topk       just the top-k pruning section of `bench`, printed as
//!              its JSON fragment (not in `all`)
//!   end-to-end just the end_to_end section of `bench`, printed as its
//!              JSON fragment (not in `all`)
//!   corpus     just the corpus_scale section of `bench` — sharded
//!              mmap mining with a controlled mid-run kill and resume
//!              — printed as its JSON fragment (not in `all`)
//!   pil-repr   PIL layout section: occupancy kernel sweep + the
//!              representation-invariance gate (not in `all`); the
//!              optional --pil-repr MODE narrows the gate to
//!              sparse-vs-MODE
//!   skew       per-worker utilization table from a --trace JSONL file
//!   all        everything above except `bench`/`skew`, in order
//!
//! --quick shrinks sweep ranges and sequence lengths so the full run
//! finishes in well under a minute; the default regenerates the paper's
//! exact configurations.
//! ```

use perigap_bench::experiments::{self, paper};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let adaptive = args.iter().any(|a| a == "--adaptive");
    // Value options (`--key <value>`): the value word must not be
    // mistaken for the experiment name.
    let value_of = |key: &str| {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let consumed_values: Vec<&str> = ["--trace", "--pil-repr"]
        .iter()
        .filter_map(|key| value_of(key))
        .collect();
    let which = args
        .iter()
        .find(|a| !a.starts_with("--") && !consumed_values.contains(&a.as_str()))
        .map(String::as_str)
        .unwrap_or("all");

    let seq_len = if quick { 600 } else { paper::SEQ_LEN };
    let rhos: Vec<f64> = if quick {
        vec![0.003, 0.004, 0.005]
    } else {
        paper::RHO_SWEEP_PERCENT.to_vec()
    };
    let ns: Vec<usize> = if quick {
        vec![10, 20, 40]
    } else {
        vec![10, 13, 20, 30, 40, 50, 60, 77]
    };
    let ws: Vec<usize> = if quick {
        vec![4, 5, 6]
    } else {
        vec![4, 5, 6, 7, 8]
    };
    let gap_mins: Vec<usize> = vec![8, 9, 10, 11, 12];
    let lens: Vec<usize> = if quick {
        vec![1_000, 2_000, 4_000]
    } else {
        (1..=10).map(|k| k * 1_000).collect()
    };
    let scale = if quick { 0.04 } else { 0.1 };

    let run_one = |name: &str| match name {
        "counts" => experiments::counts::run(seq_len),
        "table2" => experiments::table2::run(),
        "table3" => experiments::table3::run(seq_len),
        "fig4a" => experiments::fig4::run_fig4a(seq_len, &rhos),
        "fig4b" => experiments::fig4::run_fig4b(seq_len, &rhos),
        "fig5" => experiments::fig5::run(seq_len, &ns, adaptive),
        "fig6" => experiments::fig6::run(seq_len, &ws),
        "fig7" => experiments::fig7::run(seq_len, &gap_mins),
        "fig8" => experiments::fig8::run(&lens),
        "casestudy" => experiments::casestudy::run(scale),
        "extensions" => experiments::extensions::run(seq_len),
        "bench" => experiments::bench_mining::run(quick),
        "topk" => {
            let fragment = experiments::bench_mining::top_k_pruning(quick);
            println!("{fragment}");
        }
        "end-to-end" => {
            let fragment = experiments::bench_mining::end_to_end(quick);
            println!("{fragment}");
        }
        "corpus" => {
            let fragment = experiments::bench_mining::corpus_scale(quick);
            println!("{fragment}");
        }
        "pil-repr" => {
            let forced = value_of("--pil-repr").map(|raw| {
                raw.parse::<perigap_core::PilRepr>().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                })
            });
            experiments::pil_repr::run(quick, forced)
        }
        "skew" => match value_of("--trace") {
            Some(path) => experiments::skew::run(path),
            None => {
                eprintln!("skew needs --trace <run.jsonl> (a pgmine/mpp trace file)");
                std::process::exit(2);
            }
        },
        other => {
            eprintln!("unknown experiment {other:?}; see --help text in the source header");
            std::process::exit(2);
        }
    };

    if which == "all" {
        for name in [
            "counts",
            "table2",
            "table3",
            "fig4a",
            "fig4b",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "casestudy",
            "extensions",
        ] {
            run_one(name);
            println!("\n{}\n", "=".repeat(72));
        }
    } else {
        run_one(which);
    }
}
