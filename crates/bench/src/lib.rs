//! # perigap-bench
//!
//! Benchmark and reproduction harness for the *perigap* workspace.
//!
//! * [`data`] — deterministic synthetic datasets standing in for the
//!   paper's NCBI downloads (DESIGN.md §3 records the substitution);
//! * [`experiments`] — one module per paper table/figure, each printing
//!   the regenerated rows;
//! * `benches/` — criterion micro-benchmarks of the hot primitives and
//!   the ablations called out in DESIGN.md §5;
//! * `src/bin/repro.rs` — the command-line entry point
//!   (`repro all`, `repro fig4a`, `repro table3`, …).

#![warn(missing_docs)]

pub mod data;
pub mod experiments;
