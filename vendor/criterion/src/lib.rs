//! Offline stand-in for the `criterion` crate (API subset).
//!
//! The build environment has no crates.io access, so the workspace
//! patches `criterion` to this crate. It implements the harness
//! surface the workspace's benches use — `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / `bench_with_input`,
//! [`Bencher::iter`], [`BenchmarkId`], and [`black_box`] — with a
//! simple timer instead of criterion's statistical machinery.
//!
//! Two modes, selected by argv (as cargo passes it):
//! - `--test` (what `cargo test --benches` passes): run every
//!   benchmark body exactly once as a smoke test, no timing.
//! - otherwise (`cargo bench`): warm up briefly, then time a fixed
//!   wall-clock budget per benchmark and print mean iteration time.
//!
//! All other flags (`--bench`, filters, criterion options) are
//! accepted and ignored.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An opaque value barrier, preventing the optimiser from deleting
/// benchmarked work. Re-exported from `std::hint`.
pub use std::hint::black_box;

const WARM_UP_BUDGET: Duration = Duration::from_millis(200);
const MEASURE_BUDGET: Duration = Duration::from_millis(800);

/// The benchmark manager handed to each `criterion_group!` target.
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    /// Build from process argv; `--test` selects run-once smoke mode.
    pub fn from_args() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// A single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self.test_mode, &id, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's fixed time budget
    /// ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; ignored.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Benchmark `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(self.criterion.test_mode, &id, f);
        self
    }

    /// Benchmark `f` under `id`, passing `input` through.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(self.criterion.test_mode, &id, |b| f(b, input));
        self
    }

    /// End the group. (Upstream consumes `self`; kept for parity.)
    pub fn finish(self) {}
}

/// The per-benchmark timing handle.
pub struct Bencher {
    mode: BenchMode,
    report: Option<(u64, Duration)>,
}

enum BenchMode {
    Once,
    Timed,
}

impl Bencher {
    /// Run `routine` repeatedly (or once in `--test` mode) and record
    /// the mean iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            BenchMode::Once => {
                black_box(routine());
                self.report = Some((1, Duration::ZERO));
            }
            BenchMode::Timed => {
                let warm_start = Instant::now();
                let mut warm_iters: u64 = 0;
                while warm_start.elapsed() < WARM_UP_BUDGET {
                    black_box(routine());
                    warm_iters += 1;
                }
                let mut iters: u64 = 0;
                let started = Instant::now();
                let elapsed = loop {
                    black_box(routine());
                    iters += 1;
                    let elapsed = started.elapsed();
                    if elapsed >= MEASURE_BUDGET {
                        break elapsed;
                    }
                };
                let _ = warm_iters;
                self.report = Some((iters, elapsed));
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(test_mode: bool, id: &str, mut f: F) {
    let mut bencher = Bencher {
        mode: if test_mode {
            BenchMode::Once
        } else {
            BenchMode::Timed
        },
        report: None,
    };
    f(&mut bencher);
    match bencher.report {
        Some((1, _)) if test_mode => println!("test {id} ... ok"),
        Some((iters, elapsed)) => {
            let mean = elapsed.as_secs_f64() / iters as f64;
            println!(
                "bench {id:<48} {:>12.3} µs/iter ({iters} iters)",
                mean * 1e6
            );
        }
        None => println!("bench {id} ... no iter() call"),
    }
}

/// A benchmark identifier: a function name plus an optional parameter.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{}/{parameter}", name.into()),
        }
    }

    /// Just the parameter (the group name provides context).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// Conversion of the various id forms benches pass to `bench_function`
/// and `bench_with_input`.
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Bundle benchmark functions into a runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups, mirroring criterion's macro
/// of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_smoke_runs_each_body() {
        let mut criterion = Criterion { test_mode: true };
        let mut calls = 0;
        let mut group = criterion.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("a", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &n| {
            b.iter(|| calls += n)
        });
        group.finish();
        assert_eq!(calls, 8);
    }

    #[test]
    fn id_forms_render() {
        assert_eq!(BenchmarkId::new("f", 3).into_benchmark_id(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").into_benchmark_id(), "x");
        assert_eq!("plain".into_benchmark_id(), "plain");
    }
}
