//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `rand` to this crate (see `[patch.crates-io]` in the root
//! manifest). Only the surface the workspace actually uses is
//! implemented: the [`Rng`] extension methods `gen`, `gen_range` and
//! `gen_bool`, [`SeedableRng`] with `seed_from_u64`, the deterministic
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a
//! different stream than upstream's ChaCha12, which is fine because the
//! workspace only relies on determinism and uniformity, never on exact
//! reproduction of upstream streams.

/// A source of random 64-bit words. Minimal analogue of `rand_core`'s
/// trait of the same name.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`] (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                const BITS: u32 = <$t>::BITS;
                if BITS <= 64 {
                    rng.next_u64() as $t
                } else {
                    let hi = rng.next_u64() as u128;
                    let lo = rng.next_u64() as u128;
                    ((hi << 64) | lo) as $t
                }
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + uniform_u128(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u128;
                if span == u128::MAX {
                    return <$t>::sample_standard(rng);
                }
                start + uniform_u128(rng, span + 1) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u128;
                self.start.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = end.wrapping_sub(start) as $u as u128;
                if span == u128::MAX {
                    return <$t>::sample_standard(rng);
                }
                start.wrapping_add(uniform_u128(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_sint!(i8: u8, i16: u16, i32: u32, i64: u64, i128: u128, isize: usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Uniform integer in `0..bound` (`bound > 0`) by rejection sampling,
/// so small ranges carry no modulo bias.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound == 1 {
        return 0;
    }
    if bound.is_power_of_two() {
        return u128::sample_standard(rng) & (bound - 1);
    }
    // Zone is the largest multiple of `bound` that fits in u128.
    let zone = u128::MAX - (u128::MAX % bound) - 1;
    loop {
        let v = u128::sample_standard(rng);
        if v <= zone {
            return v % bound;
        }
    }
}

/// The user-facing random-value interface: every [`RngCore`] gets these
/// methods for free, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample of `T` (the `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p = {p} outside [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a single `u64` (the workspace's only construction).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut split = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = split.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seeds xoshiro state and implements `seed_from_u64`.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the same stream as upstream `StdRng` (ChaCha12); every use in
    /// this workspace is seed-relative, so only determinism matters.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E3779B97F4A7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..10).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..10).map(|_| r.gen()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..10).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3..7usize);
            assert!((3..7).contains(&v));
            let w = r.gen_range(10..=12u8);
            assert!((10..=12).contains(&w));
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[r.gen_range(0..5usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle virtually never is identity"
        );
        assert!([0u8; 0].choose(&mut r).is_none());
        assert_eq!([9u8].choose(&mut r), Some(&9));
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((4_500..5_500).contains(&hits), "hits = {hits}");
    }
}
