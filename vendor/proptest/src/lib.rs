//! Offline stand-in for the `proptest` crate (API subset).
//!
//! The build environment has no crates.io access, so the workspace
//! patches `proptest` to this crate. It implements the subset the
//! workspace's property tests use: the [`proptest!`] macro (with
//! `pat in strategy` and `name: Type` argument forms, mixed, with
//! optional trailing commas and an optional
//! `#![proptest_config(...)]` header), range / tuple / map /
//! flat-map / vec strategies, unweighted [`prop_oneof!`],
//! `any::<T>()`, and the `prop_assert!` family.
//!
//! Differences from upstream: cases are generated from a fixed
//! deterministic seed (stable across runs and machines), and failing
//! inputs are reported but not shrunk.

use std::fmt;

pub mod test_runner;

pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// A generator of values of one type.
///
/// Upstream proptest separates strategies from value trees to support
/// shrinking; this subset only ever samples.
pub trait Strategy {
    /// The type of values produced.
    type Value: fmt::Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every sampled value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derive a second strategy from every sampled value and sample it
    /// — the dependent-generation combinator.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// The strategy returned by [`Strategy::prop_flat_map`].
#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// The strategy built by [`prop_oneof!`]: sample one of several
/// same-valued strategies, chosen uniformly. (Upstream supports
/// weighted arms; this subset does not.)
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: fmt::Debug> Union<T> {
    /// Wrap the boxed alternatives; panics on an empty list.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rand::Rng::gen_range(rng, 0..self.options.len());
        self.options[i].sample(rng)
    }
}

/// Sample from one of several strategies with equal probability,
/// mirroring (the unweighted form of) `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$(::std::boxed::Box::new($arm)),+])
    };
}

/// A strategy producing one fixed value, mirroring `proptest::strategy::Just`.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Sample an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T` — used by the macro's `name: Type`
/// argument form.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rand::Standard::sample_standard(rng)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f64);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rand::Rng::gen_range(rng, self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> SizeRange {
            SizeRange {
                min: exact,
                max: exact,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` whose length lies in `size` and whose elements come from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng, self.size.min..=self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Fail the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Discard the current case (it is resampled, not counted) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The test-definition macro. Supports:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]  // optional
///     #[test]
///     fn name(pat in strategy, typed: u64) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_munch!(($cfg, stringify!($name)) [] [] ($($args)*) $body);
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_munch {
    // All arguments consumed: build the strategy tuple and run.
    (($cfg:expr, $name:expr) [$($pat:pat),*] [$($strat:expr),*] () $body:block) => {{
        let config = $cfg;
        let strategies = ($($strat,)*);
        $crate::test_runner::run(&config, $name, &strategies, |values| {
            let ($($pat,)*) = values;
            (move || -> ::core::result::Result<(), $crate::TestCaseError> {
                $body
                #[allow(unreachable_code)]
                ::core::result::Result::Ok(())
            })()
        });
    }};
    // `pattern in strategy` (more arguments follow).
    (($cfg:expr, $name:expr) [$($pat:pat),*] [$($strat:expr),*] ($p:pat in $s:expr, $($rest:tt)*) $body:block) => {
        $crate::__proptest_munch!(($cfg, $name) [$($pat,)* $p] [$($strat,)* $s] ($($rest)*) $body);
    };
    // `pattern in strategy` (final argument, no trailing comma).
    (($cfg:expr, $name:expr) [$($pat:pat),*] [$($strat:expr),*] ($p:pat in $s:expr) $body:block) => {
        $crate::__proptest_munch!(($cfg, $name) [$($pat,)* $p] [$($strat,)* $s] () $body);
    };
    // `name: Type` (more arguments follow).
    (($cfg:expr, $name:expr) [$($pat:pat),*] [$($strat:expr),*] ($p:ident: $t:ty, $($rest:tt)*) $body:block) => {
        $crate::__proptest_munch!(($cfg, $name) [$($pat,)* $p] [$($strat,)* $crate::any::<$t>()] ($($rest)*) $body);
    };
    // `name: Type` (final argument, no trailing comma).
    (($cfg:expr, $name:expr) [$($pat:pat),*] [$($strat:expr),*] ($p:ident: $t:ty) $body:block) => {
        $crate::__proptest_munch!(($cfg, $name) [$($pat,)* $p] [$($strat,)* $crate::any::<$t>()] () $body);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = (u8, u8)> {
        (0u8..10, 0u8..10).prop_map(|(a, b)| (a, a + b))
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(a in 3usize..9, b in 1u64..=4, f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((1..=4).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn typed_and_in_forms_mix(x: u64, lo in 5u32..6) {
            prop_assert_eq!(lo, 5);
            let _ = x;
        }

        #[test]
        fn tuples_and_maps((lo, hi) in pairs()) {
            prop_assert!(lo <= hi);
        }

        #[test]
        fn vec_strategy_respects_bounds(v in collection::vec(0u8..4, 2..5),) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&c| c < 4));
        }

        #[test]
        fn oneof_draws_every_arm_and_nothing_else(v in collection::vec(prop_oneof![Just(1u8), Just(4), 7u8..9], 64..65)) {
            prop_assert!(v.iter().all(|&x| [1, 4, 7, 8].contains(&x)));
            // 64 draws from 3 uniform arms miss an arm with prob < 1e-7.
            prop_assert!(v.contains(&1) && v.contains(&4));
        }

        #[test]
        fn flat_map_dependent_generation(v in (2usize..6).prop_flat_map(|n| collection::vec(0u8..4, n..n + 1))) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u8..8) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn early_ok_return_is_allowed(n in 0u8..8) {
            if n > 0 {
                return Ok(());
            }
            prop_assert_eq!(n, 0);
        }
    }

    #[test]
    #[should_panic(expected = "assertion failed")]
    fn failures_panic_with_input_report() {
        let config = ProptestConfig::with_cases(4);
        crate::test_runner::run(&config, "always_fails", &(0u8..4,), |(v,)| {
            crate::prop_assert!(v > 100);
            Ok(())
        });
    }

    #[test]
    fn deterministic_across_runs() {
        let mut seen = Vec::new();
        let config = ProptestConfig::with_cases(8);
        crate::test_runner::run(&config, "collect", &(0u32..1000,), |(v,)| {
            seen.push(v);
            Ok(())
        });
        let mut second = Vec::new();
        crate::test_runner::run(&config, "collect", &(0u32..1000,), |(v,)| {
            second.push(v);
            Ok(())
        });
        assert_eq!(seen, second);
    }
}
