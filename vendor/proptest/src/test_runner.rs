//! The case loop behind [`proptest!`](crate::proptest): deterministic
//! sampling, rejection resampling, and failure reporting with the
//! offending input.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::{RngCore, SeedableRng};

use crate::Strategy;

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config that runs `cases` successful cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Why a single case did not succeed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case's inputs did not satisfy a `prop_assume!`; it is
    /// resampled without counting against `cases`.
    Reject,
    /// The case failed; the whole test fails with this message.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (see [`TestCaseError::Reject`]).
    pub fn reject(_reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject
    }
}

/// The generator handed to strategies. Deterministic: seeded from the
/// test's name, so runs are reproducible across machines and
/// invocations (this subset does not support `PROPTEST_SEED`
/// randomisation).
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    fn from_test_name(name: &str) -> TestRng {
        TestRng {
            inner: rand::rngs::StdRng::seed_from_u64(fnv1a(name.as_bytes())),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Run `test` against `config.cases` sampled inputs, panicking (with
/// the offending input) on the first failure. Called by the expansion
/// of [`proptest!`](crate::proptest).
pub fn run<S, F>(config: &ProptestConfig, name: &str, strategy: &S, mut test: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_test_name(name);
    let reject_budget = config.cases.saturating_mul(64).max(4096);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        let value = strategy.sample(&mut rng);
        // Captured before the call: the value is consumed by `test`,
        // but failure reports must still show it.
        let shown = format!("{value:?}");
        match catch_unwind(AssertUnwindSafe(|| test(value))) {
            Ok(Ok(())) => passed += 1,
            Ok(Err(TestCaseError::Reject)) => {
                rejected += 1;
                if rejected > reject_budget {
                    panic!(
                        "proptest `{name}`: gave up after {rejected} rejected cases \
                         ({passed}/{} passed); weaken the prop_assume! filter",
                        config.cases
                    );
                }
            }
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!("proptest `{name}` failed at case {passed} with input {shown}\n{msg}")
            }
            Err(payload) => {
                let msg: &str = if let Some(s) = payload.downcast_ref::<&str>() {
                    s
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s
                } else {
                    "<non-string panic payload>"
                };
                panic!("proptest `{name}` panicked at case {passed} with input {shown}\n{msg}")
            }
        }
    }
}
